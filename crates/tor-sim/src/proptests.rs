//! Property-based tests over the protocol-critical invariants.

#![cfg(test)]

use proptest::prelude::*;

use onion_crypto::descriptor::DescriptorId;
use onion_crypto::identity::Fingerprint;
use onion_crypto::sha1::{Digest, Sha1};
use onion_crypto::u160::U160;

use crate::clock::SimTime;
use crate::consensus::{Consensus, ConsensusEntry};
use crate::flags::RelayFlags;
use crate::relay::{Ipv4, RelayId};

fn consensus_from_fps(fps: &[[u8; 20]]) -> Consensus {
    let entries = fps
        .iter()
        .enumerate()
        .map(|(i, fp)| ConsensusEntry {
            relay: RelayId(i),
            fingerprint: Fingerprint::from_digest(Digest::from_bytes(*fp)),
            nickname: format!("r{i}"),
            ip: Ipv4::new(10, 0, (i / 200) as u8, (i % 200) as u8),
            or_port: 9001,
            bandwidth: 100 + i as u64,
            flags: RelayFlags::RUNNING | RelayFlags::HSDIR | RelayFlags::VALID,
        })
        .collect();
    Consensus::new(SimTime::from_ymd(2013, 2, 4), entries)
}

proptest! {
    /// The ring lookup returns exactly the 3 nearest successors, for
    /// arbitrary fingerprint sets and query points.
    #[test]
    fn responsible_lookup_matches_bruteforce(
        fps in proptest::collection::hash_set(any::<[u8; 20]>(), 3..40),
        query in any::<[u8; 20]>(),
    ) {
        let fps: Vec<[u8; 20]> = fps.into_iter().collect();
        let consensus = consensus_from_fps(&fps);
        let desc = DescriptorId::from_digest(Digest::from_bytes(query));
        let pos = desc.to_u160();

        let got: Vec<U160> = consensus
            .responsible_hsdirs(desc)
            .iter()
            .map(|e| pos.distance_to(e.fingerprint.to_u160()))
            .collect();

        let mut brute: Vec<U160> = fps
            .iter()
            .map(|fp| pos.distance_to(U160::from_bytes(fp)))
            .collect();
        brute.sort();
        let mut got_sorted = got.clone();
        got_sorted.sort();
        prop_assert_eq!(got_sorted, brute[..3.min(brute.len())].to_vec());
    }

    /// The lookup never returns duplicates when the ring has ≥ 3
    /// distinct members.
    #[test]
    fn responsible_lookup_distinct(
        fps in proptest::collection::hash_set(any::<[u8; 20]>(), 3..30),
        query in any::<[u8; 20]>(),
    ) {
        let fps: Vec<[u8; 20]> = fps.into_iter().collect();
        let consensus = consensus_from_fps(&fps);
        let desc = DescriptorId::from_digest(Digest::from_bytes(query));
        let resp = consensus.responsible_hsdirs(desc);
        let mut fingerprints: Vec<_> = resp.iter().map(|e| e.fingerprint).collect();
        fingerprints.sort();
        fingerprints.dedup();
        prop_assert_eq!(fingerprints.len(), resp.len());
    }

    /// The dir-spec document encoding round-trips arbitrary consensuses.
    #[test]
    fn docfmt_roundtrip(
        fps in proptest::collection::hash_set(any::<[u8; 20]>(), 1..20),
    ) {
        let fps: Vec<[u8; 20]> = fps.into_iter().collect();
        let consensus = consensus_from_fps(&fps);
        let doc = crate::docfmt::encode(&consensus);
        let parsed = crate::docfmt::decode(&doc).unwrap();
        prop_assert_eq!(parsed.len(), consensus.len());
        for (a, b) in parsed.entries().iter().zip(consensus.entries()) {
            prop_assert_eq!(a.fingerprint, b.fingerprint);
            prop_assert_eq!(a.flags, b.flags);
            prop_assert_eq!(a.bandwidth, b.bandwidth);
        }
    }

    /// Weighted sampling always returns a valid index with nonzero
    /// weight.
    #[test]
    fn weighted_sampling_valid(
        weights in proptest::collection::vec(0u64..1000, 1..50),
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let items: Vec<(usize, u64)> =
            weights.iter().copied().enumerate().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        match crate::guard::sample_weighted_index(&items, &mut rng) {
            Some(idx) => {
                prop_assert!(idx < items.len());
                prop_assert!(items[idx].1 > 0, "zero-weight item sampled");
            }
            None => {
                prop_assert!(weights.iter().all(|&w| w == 0));
            }
        }
    }

    /// The traffic signature matcher detects every encoding of itself
    /// and never fires on plain responses.
    #[test]
    fn signature_soundness(run in 1usize..80, payload in 0usize..40) {
        use crate::cells::{plain_response, TrafficSignature};
        let sig = TrafficSignature::new(run);
        prop_assert!(sig.matches(&sig.encode_response(payload)));
        prop_assert!(!sig.matches(&plain_response(payload)));
    }

    /// Consensuses voted under arbitrary fault plans still satisfy the
    /// authority invariants: at most two relays per IP, every listed
    /// relay running and reachable, and the HSDir flag only on relays
    /// with ≥ 25 h of uptime.
    #[test]
    fn faulted_consensus_preserves_invariants(
        fault_seed in any::<u64>(),
        crash_permille in 0u64..300,
        restart_after in 1u64..6,
        hours in 1u64..30,
    ) {
        use crate::fault::FaultPlan;
        use crate::network::NetworkBuilder;
        use std::collections::HashMap;

        let plan = FaultPlan {
            seed: fault_seed,
            relay_crash_rate: crash_permille as f64 / 1000.0,
            restart_after_hours: restart_after,
            ..FaultPlan::none()
        };
        let mut net = NetworkBuilder::new()
            .relays(60)
            .seed(11)
            .start(SimTime::from_ymd(2013, 2, 1))
            .faults(plan)
            .build();
        net.advance_hours(hours);

        let now = net.consensus().valid_after();
        let mut per_ip: HashMap<Ipv4, usize> = HashMap::new();
        for entry in net.consensus().entries() {
            *per_ip.entry(entry.ip).or_insert(0) += 1;
            let relay = net.relay(entry.relay);
            prop_assert!(relay.running && relay.reachable,
                "listed relay {} is down", entry.nickname);
            if entry.flags.contains(RelayFlags::HSDIR) {
                prop_assert!(relay.uptime(now) >= 25 * crate::clock::HOUR,
                    "HSDir {} has only {}s uptime", entry.nickname, relay.uptime(now));
            }
        }
        prop_assert!(per_ip.values().all(|&n| n <= 2), "2-per-IP rule violated");
    }

    /// Differential test: the sorted-vec descriptor store agrees with
    /// a naive `HashMap` reference model on every observable — length,
    /// membership, fetched payloads, iteration contents — across
    /// arbitrary interleavings of single publishes, canonical batch
    /// merges, and expiry sweeps.
    #[test]
    fn store_matches_naive_hashmap_model(
        rounds in proptest::collection::vec(
            (
                proptest::collection::vec((any::<u8>(), 0u64..40), 0..12),
                1u64..6,
            ),
            1..16,
        ),
    ) {
        use std::collections::HashMap;
        use crate::store::{DescriptorStore, StoredDescriptor};
        use onion_crypto::OnionAddress;

        let base = SimTime::from_ymd(2013, 2, 1);
        let mut now = base + 48 * crate::clock::HOUR;
        let mut store = DescriptorStore::default();
        let mut model: HashMap<DescriptorId, StoredDescriptor> = HashMap::new();

        for (entries, advance) in rounds {
            let descs: Vec<StoredDescriptor> = entries
                .iter()
                .map(|&(key, age_hours)| StoredDescriptor {
                    descriptor_id: DescriptorId::from_digest(
                        Sha1::digest(&[key, 0x5d]),
                    ),
                    onion: OnionAddress::from_pubkey(&[key]),
                    published: base + (48 + age_hours) * crate::clock::HOUR,
                })
                .collect();
            // Even-indexed entries take the single-publish path, the
            // rest go through one canonical batch merge — applied
            // after the singles, exactly as `step()` orders them.
            let mut batch = Vec::new();
            for (i, d) in descs.iter().enumerate() {
                if i % 2 == 0 {
                    store.publish(*d);
                    model.insert(d.descriptor_id, *d);
                } else {
                    batch.push(*d);
                }
            }
            store.apply_batch(&batch);
            for d in &batch {
                model.insert(d.descriptor_id, *d);
            }
            store.expire(now);
            model.retain(|_, d| now.since(d.published) < crate::clock::DAY);

            prop_assert_eq!(store.len(), model.len());
            let mut expected: Vec<&StoredDescriptor> = model.values().collect();
            expected.sort_by_key(|d| d.descriptor_id);
            for (got, want) in store.iter().zip(expected) {
                prop_assert_eq!(got.descriptor_id, want.descriptor_id);
                prop_assert_eq!(got.onion, want.onion);
                prop_assert_eq!(got.published, want.published);
            }
            for d in &descs {
                let id = d.descriptor_id;
                prop_assert_eq!(store.contains(id), model.contains_key(&id));
                prop_assert_eq!(
                    store.fetch(id).map(|s| s.published),
                    model.get(&id).map(|s| s.published)
                );
            }
            let absent = DescriptorId::from_digest(Sha1::digest(b"never published"));
            prop_assert!(store.fetch(absent).is_none());
            now += advance * crate::clock::HOUR;
        }
    }

    /// The mutate-phase worker budget is invisible to simulation
    /// state: a network advanced at 1 mutate thread and one advanced
    /// at k threads agree on every observable — consensus, descriptor
    /// stores, slot-hours, hot-path and fault counters — fault-free
    /// and under protocol faults alike.
    #[test]
    fn mutate_thread_count_never_changes_state(
        threads in 2usize..9,
        hours in 1u64..14,
        seed in any::<u64>(),
        adversarial in any::<bool>(),
    ) {
        use crate::fault::FaultPlan;
        use crate::network::NetworkBuilder;
        use onion_crypto::OnionAddress;

        let plan = if adversarial {
            FaultPlan::adversarial(seed)
        } else {
            FaultPlan::none()
        };
        let build = || {
            NetworkBuilder::new()
                .relays(40)
                .seed(seed)
                .start(SimTime::from_ymd(2013, 2, 1))
                .faults(plan.clone())
                .build()
        };
        let mut reference = build();
        let mut sharded = build();
        sharded.set_mutate_threads(threads);
        for i in 0..16u8 {
            let onion = OnionAddress::from_pubkey(&[i, 0xab]);
            reference.register_service(onion, i % 3 != 0);
            sharded.register_service(onion, i % 3 != 0);
        }
        reference.advance_hours(hours);
        sharded.advance_hours(hours);

        prop_assert_eq!(
            format!("{:?}", reference.consensus().entries()),
            format!("{:?}", sharded.consensus().entries())
        );
        prop_assert_eq!(reference.slot_hours_sorted(), sharded.slot_hours_sorted());
        prop_assert_eq!(
            format!("{:?}", reference.hot_counters()),
            format!("{:?}", sharded.hot_counters())
        );
        prop_assert_eq!(
            format!("{:?}", reference.fault_counters()),
            format!("{:?}", sharded.fault_counters())
        );
        for r in 0..40 {
            let relay = RelayId(r);
            let a: Vec<_> = reference.store(relay).iter().copied().collect();
            let b: Vec<_> = sharded.store(relay).iter().copied().collect();
            prop_assert_eq!(a.len(), b.len(), "store {} length", r);
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.descriptor_id, y.descriptor_id);
                prop_assert_eq!(x.onion, y.onion);
                prop_assert_eq!(x.published, y.published);
            }
        }
        // The sharded run actually used the requested budget.
        let stats = sharded.take_mutate_wave_stats();
        prop_assert!(!stats.is_empty());
        prop_assert!(stats.iter().all(|w| w.threads == threads));
    }

    /// SHA-1-derived ring positions are uniform enough that the
    /// average-gap estimate is within an order of magnitude of every
    /// observed gap for moderate rings — sanity for the ratio statistic.
    #[test]
    fn ring_positions_cover_space(n in 50usize..200) {
        let mut positions: Vec<U160> = (0..n)
            .map(|i| U160::from(Sha1::digest(format!("relay {i}").as_bytes())))
            .collect();
        positions.sort();
        // Largest gap should not exceed ~20x the average for n ≥ 50
        // (loose bound; catches gross non-uniformity or sort bugs).
        let avg = U160::MAX.div_u64(n as u64);
        let mut worst = U160::ZERO;
        for pair in positions.windows(2) {
            let gap = pair[0].distance_to(pair[1]);
            if gap > worst {
                worst = gap;
            }
        }
        let bound = avg.to_f64() * 20.0;
        prop_assert!(worst.to_f64() < bound);
    }
}

//! The end-to-end study pipeline: everything the paper did, in order,
//! against one simulated network.

use onion_crypto::onion::OnionAddress;
use tor_sim::clock::SimTime;
use tor_sim::network::NetworkBuilder;

use hs_content::{CertSurvey, CrawlReport, Crawler};
use hs_deanon::{DeanonAttack, DeanonConfig, GeoMap};
use hs_harvest::{HarvestConfig, HarvestOutcome, Harvester};
use hs_popularity::{
    ranking::requested_published_share, BotnetForensics, Ranking, ResolutionReport, Resolver,
    TrafficConfig, TrafficDriver,
};
use hs_portscan::{ScanConfig, ScanReport, Scanner};
use hs_tracking::{
    scenario, ConsensusArchive, DetectorConfig, HistoryConfig, TrackingAnalysis,
    TrackingDetector,
};
use hs_world::{GeoDb, World, WorldConfig};

/// Study parameters.
#[derive(Clone, Debug)]
pub struct StudyConfig {
    /// Deterministic seed for the whole study.
    pub seed: u64,
    /// World scale (1.0 = the paper's 39,824 addresses).
    pub scale: f64,
    /// Honest relay population.
    pub relays: usize,
    /// Harvesting-attack parameters.
    pub harvest: HarvestConfig,
    /// Port-scan days.
    pub scan_days: usize,
    /// Client pool size for request traffic.
    pub traffic_clients: usize,
    /// Client-deanonymisation parameters.
    pub deanon: DeanonConfig,
    /// Hours the dedicated Sec. VI deanonymisation window runs after
    /// the harvest.
    pub deanon_hours: u64,
    /// Run the (expensive) 3-year tracking analysis.
    pub run_tracking: bool,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 0x2013_0204,
            scale: 1.0,
            relays: 1_400,
            harvest: HarvestConfig::default(),
            scan_days: 7,
            traffic_clients: 500,
            deanon: DeanonConfig::default(),
            deanon_hours: 48,
            run_tracking: true,
        }
    }
}

impl StudyConfig {
    /// A configuration small enough for unit tests (~1 % scale).
    pub fn test_scale() -> Self {
        StudyConfig {
            scale: 0.01,
            relays: 120,
            harvest: HarvestConfig {
                fleet: hs_harvest::FleetConfig {
                    ips: 8,
                    relays_per_ip: 8,
                    bandwidth: 300,
                },
                warmup_hours: 26,
                rotation_hours: 2,
            },
            scan_days: 3,
            traffic_clients: 60,
            deanon_hours: 24,
            run_tracking: false,
            ..StudyConfig::default()
        }
    }
}

/// Sec. VI results.
#[derive(Debug)]
pub struct DeanonReport {
    /// The attacked service.
    pub target: OnionAddress,
    /// Unique client IPs deanonymised.
    pub unique_clients: u32,
    /// Analytic per-fetch catch probability.
    pub expected_rate: f64,
    /// Country census of the caught clients (Fig. 3).
    pub geomap: GeoMap,
}

/// Sec. VII results: one analysis per calendar year.
#[derive(Debug)]
pub struct TrackingReport {
    /// (label, analysis) per year.
    pub years: Vec<(String, TrackingAnalysis)>,
}

/// Everything the study measured.
#[derive(Debug)]
pub struct StudyReport {
    /// The generated ground-truth world.
    pub world: World,
    /// Sec. II: harvesting outcome.
    pub harvest: HarvestOutcome,
    /// Sec. III: the port scan (Fig. 1).
    pub scan: ScanReport,
    /// Sec. III: the certificate survey.
    pub certs: CertSurvey,
    /// Sec. IV: crawl funnel, Table I, languages, Fig. 2.
    pub crawl: CrawlReport,
    /// Sec. V: descriptor-request resolution.
    pub resolution: ResolutionReport,
    /// Sec. V: Table II.
    pub ranking: Ranking,
    /// Sec. V: Goldnet server-status forensics.
    pub forensics: BotnetForensics,
    /// Sec. V: share of published services ever requested.
    pub requested_published_share: f64,
    /// Sec. VI: client deanonymisation.
    pub deanon: DeanonReport,
    /// Sec. VII: tracking detection (when enabled).
    pub tracking: Option<TrackingReport>,
}

/// The study driver.
///
/// # Examples
///
/// ```no_run
/// use hs_landscape::{Study, StudyConfig};
///
/// let report = Study::new(StudyConfig::test_scale()).run();
/// assert!(report.harvest.onion_count() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct Study {
    config: StudyConfig,
}

impl Study {
    /// Creates a study.
    pub fn new(config: StudyConfig) -> Self {
        Study { config }
    }

    /// The configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Runs the full pipeline.
    pub fn run(&self) -> StudyReport {
        let cfg = &self.config;

        // --- World and network -----------------------------------------
        let world = World::generate(
            WorldConfig::default()
                .with_seed(cfg.seed)
                .with_scale(cfg.scale),
        );
        let geo = GeoDb::new();
        let mut net = NetworkBuilder::new()
            .relays(cfg.relays)
            .seed(cfg.seed)
            .start(SimTime::from_ymd(2013, 2, 1))
            .build();
        world.register_all(&mut net);
        // The attacker's guard relays run long before the measurement:
        // victims' guard sets must have had the chance to include them.
        let attacker_guards = DeanonAttack::preposition_guards(&mut net, &cfg.deanon);
        net.advance_hours(1);

        // --- Client traffic + deanonymisation target --------------------
        let mut traffic = TrafficDriver::new(
            &mut net,
            &world,
            &geo,
            TrafficConfig { clients: cfg.traffic_clients, seed: cfg.seed ^ 0x7aff },
        );
        // --- Harvest (Sec. II) with live traffic (Sec. V) ---------------
        let harvester = Harvester::new(cfg.harvest.clone());
        let harvest = harvester.run(&mut net, |net| {
            traffic.tick_hour(net);
        });

        // --- Client deanonymisation (Sec. VI), a dedicated window -------
        // The paper ran this as its own experiment against one of the
        // Goldnet front ends; deploying the trackers only *after* the
        // harvest keeps the Sec. V popularity logs unbiased.
        let target: OnionAddress = "uecbcfgfofuwkcrd".parse().expect("goldnet label");
        let mut attack =
            DeanonAttack::deploy_with_guards(&mut net, target, &cfg.deanon, attacker_guards);
        for _ in 0..cfg.deanon_hours {
            attack.reposition(&mut net);
            net.advance_hours(1);
            traffic.tick_hour(&mut net);
        }
        let observations = net.take_guard_observations();
        let geomap = GeoMap::build(&geo, &observations);
        let deanon = DeanonReport {
            target,
            unique_clients: geomap.total_clients(),
            expected_rate: attack.expected_catch_rate(&net),
            geomap,
        };

        // --- Port scan (Sec. III, Fig. 1) --------------------------------
        let scanner = Scanner::new(ScanConfig {
            days: cfg.scan_days,
            ..ScanConfig::default()
        });
        let scan = scanner.run(&mut net, &world, &harvest.onions);

        // --- Certificates (Sec. III) -------------------------------------
        let https_onions: Vec<OnionAddress> = scan
            .open_by_onion
            .iter()
            .filter(|(_, ports)| ports.contains(&443))
            .map(|(&onion, _)| onion)
            .collect();
        let certs = CertSurvey::run(&world, https_onions);

        // --- Crawl (Sec. IV, Table I, Fig. 2) ----------------------------
        let crawler = Crawler::new();
        let crawl = crawler.run(&world, &scan.crawl_destinations());

        // --- Popularity (Sec. V, Table II) -------------------------------
        let resolver = Resolver::build(
            &harvest.onions,
            SimTime::from_ymd(2013, 1, 28),
            SimTime::from_ymd(2013, 2, 8),
        );
        let resolution = resolver.resolve_log(&harvest.requests);
        let ranking = Ranking::build_normalized(&resolution, &world, &harvest.slot_hours);
        let top_onions: Vec<OnionAddress> =
            ranking.top(40).iter().map(|r| r.onion).collect();
        let forensics = BotnetForensics::probe(&world, top_onions);
        let requested_share = requested_published_share(&resolution, &world);

        // --- Tracking detection (Sec. VII) -------------------------------
        let tracking = cfg.run_tracking.then(|| {
            let mut archive = ConsensusArchive::generate(&HistoryConfig {
                seed: cfg.seed ^ 0x7ac,
                ..HistoryConfig::default()
            });
            scenario::inject_all(&mut archive, scenario::silkroad());
            let detector = TrackingDetector::new(DetectorConfig::default());
            let years = [
                ("year 1 (Feb–Dec 2011)", (2011, 2, 1), (2011, 12, 31)),
                ("year 2 (2012)", (2012, 1, 1), (2012, 12, 31)),
                ("year 3 (Jan–Oct 2013)", (2013, 1, 1), (2013, 10, 31)),
            ]
            .into_iter()
            .map(|(label, s, e)| {
                (
                    label.to_owned(),
                    detector.analyse(
                        &archive,
                        scenario::silkroad(),
                        SimTime::from_ymd(s.0, s.1, s.2),
                        SimTime::from_ymd(e.0, e.1, e.2),
                    ),
                )
            })
            .collect();
            TrackingReport { years }
        });

        StudyReport {
            world,
            harvest,
            scan,
            certs,
            crawl,
            resolution,
            ranking,
            forensics,
            requested_published_share: requested_share,
            deanon,
            tracking,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_scale_study_runs_end_to_end() {
        let report = Study::new(StudyConfig::test_scale()).run();
        assert!(report.harvest.onion_count() > 50, "harvest crop");
        assert!(report.scan.total_open() > 0, "scan found ports");
        assert!(!report.crawl.classified.is_empty(), "pages classified");
        assert!(report.resolution.total_requests > 0, "requests logged");
        assert!(!report.ranking.rows().is_empty(), "ranking built");
        assert!(report.tracking.is_none(), "tracking disabled at test scale");
    }
}

//! The end-to-end study: everything the paper did, run through the
//! staged [`crate::pipeline`] engine.
//!
//! [`Study`] is the stable front door: [`Study::run`] executes the
//! full pipeline (analysis stages in parallel) and assembles a
//! [`StudyReport`]; [`Study::run_until`] and [`Study::run_stages`]
//! execute only a dependency closure for callers that need a subset of
//! the artifacts (the bench binaries, the figure-specific CLI
//! commands).

use hs_content::{CertSurvey, CrawlReport};
use hs_deanon::DeanonConfig;
use hs_harvest::{HarvestConfig, HarvestOutcome};
use hs_popularity::{BotnetForensics, Ranking, ResolutionReport, SketchConfig, SketchSummary};
use hs_portscan::ScanReport;
use hs_world::World;
use tor_sim::FaultPlan;

use crate::pipeline::timing::DegradedStage;
use crate::pipeline::{ExecMode, Pipeline, PipelineRun, PipelineTimings, RunOptions, StageId};

pub use crate::pipeline::artifacts::{DeanonReport, TrackingReport};

/// Study parameters.
#[derive(Clone, Debug)]
pub struct StudyConfig {
    /// Deterministic seed for the whole study; per-stage seeds are
    /// derived from it (see [`crate::pipeline::seeds`]).
    pub seed: u64,
    /// World scale (1.0 = the paper's 39,824 addresses).
    pub scale: f64,
    /// Honest relay population.
    pub relays: usize,
    /// Harvesting-attack parameters.
    pub harvest: HarvestConfig,
    /// Port-scan days.
    pub scan_days: usize,
    /// Client pool size for request traffic.
    pub traffic_clients: usize,
    /// Client-deanonymisation parameters.
    pub deanon: DeanonConfig,
    /// Hours the dedicated Sec. VI deanonymisation window runs after
    /// the harvest.
    pub deanon_hours: u64,
    /// Run the (expensive) 3-year tracking analysis.
    pub run_tracking: bool,
    /// Deterministic protocol-level fault injection (relay crashes,
    /// HSDir drops, publish failures, service flaps, crawl flakes).
    /// The default inert plan is the identity: it changes no artifact
    /// byte. The plan's own seed is ignored — the engine derives it
    /// from [`StudyConfig::seed`] via the `Faults` seed domain.
    pub faults: FaultPlan,
    /// Chaos hook: stages that fail every attempt (exercises graceful
    /// degradation end-to-end). Empty by default.
    pub fail_stages: Vec<StageId>,
    /// Chaos hook: stages that fail their first attempt only (the
    /// stage retry budget must absorb them). Empty by default.
    pub flaky_stages: Vec<StageId>,
    /// Streaming popularity aggregation: when set, the harvest feeds
    /// hourly request-log drains into bounded-memory sketches
    /// (count-min, space-saving top-k, HyperLogLog) instead of
    /// materializing the per-request event vector, and the popularity
    /// analysis ranks from the sketch state. `None` (the default)
    /// keeps the exact path and every committed baseline byte-stable.
    pub streaming: Option<SketchConfig>,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 0x2013_0204,
            scale: 1.0,
            relays: 1_400,
            harvest: HarvestConfig::default(),
            scan_days: 7,
            traffic_clients: 500,
            deanon: DeanonConfig::default(),
            deanon_hours: 48,
            run_tracking: true,
            faults: FaultPlan::none(),
            fail_stages: Vec::new(),
            flaky_stages: Vec::new(),
            streaming: None,
        }
    }
}

impl StudyConfig {
    /// A configuration small enough for unit tests (~1 % scale).
    pub fn test_scale() -> Self {
        StudyConfig {
            scale: 0.01,
            relays: 120,
            harvest: HarvestConfig {
                fleet: hs_harvest::FleetConfig {
                    ips: 8,
                    relays_per_ip: 8,
                    bandwidth: 300,
                },
                warmup_hours: 26,
                rotation_hours: 2,
            },
            scan_days: 3,
            traffic_clients: 60,
            deanon_hours: 24,
            run_tracking: false,
            ..StudyConfig::default()
        }
    }

    /// The full paper-scale preset: the 2013 network at scale 1.0
    /// (~39,824 addresses, 1,400 honest relays) attacked with the
    /// paper's actual fleet — 58 IPs × 24 relay instances. This is the
    /// configuration the scale-1.0 benchmarks run (and the committed
    /// `results/bench_scale1_baseline.json` budget covers); the
    /// 3-year tracking analysis stays off so the preset measures the
    /// simulation hot paths, not the tracking extrapolation.
    pub fn scale_one() -> Self {
        StudyConfig {
            scale: 1.0,
            relays: 1_400,
            harvest: HarvestConfig {
                fleet: hs_harvest::FleetConfig {
                    ips: 58,
                    relays_per_ip: 24,
                    bandwidth: 400,
                },
                warmup_hours: 26,
                rotation_hours: 2,
            },
            scan_days: 7,
            traffic_clients: 500,
            run_tracking: false,
            ..StudyConfig::default()
        }
    }

    /// A deterministic 64-bit fingerprint of every field that can
    /// change an artifact byte. The content-addressed stage cache
    /// folds it into every cache key, so two queries share cached
    /// artifacts only when their *entire* configuration matches — any
    /// tweak (scale, fault rates, chaos hooks, sketch parameters)
    /// yields a disjoint key space. The root seed is deliberately
    /// included even though keys also fold it separately: the
    /// fingerprint must stand alone as a config identity for `STATUS`
    /// output.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0x5374_7564_7943_6667; // "StudyCfg"
        let mut fold = |v: u64| h = wave::mix2(h, v);
        fold(self.seed);
        fold(self.scale.to_bits());
        fold(self.relays as u64);
        fold(self.harvest.fleet.ips as u64);
        fold(self.harvest.fleet.relays_per_ip as u64);
        fold(self.harvest.fleet.bandwidth);
        fold(self.harvest.warmup_hours);
        fold(self.harvest.rotation_hours);
        fold(self.scan_days as u64);
        fold(self.traffic_clients as u64);
        fold(u64::from(self.deanon.guards));
        fold(self.deanon.guard_bandwidth);
        fold(self.deanon.signature.padding_run as u64);
        fold(self.deanon_hours);
        fold(u64::from(self.run_tracking));
        fold(self.faults.relay_crash_rate.to_bits());
        fold(self.faults.restart_after_hours);
        fold(self.faults.hsdir_drop_rate.to_bits());
        fold(self.faults.publish_drop_rate.to_bits());
        fold(self.faults.service_flap_rate.to_bits());
        fold(u64::from(self.faults.overload_threshold));
        fold(self.faults.crawl_transient_rate.to_bits());
        fold(self.fail_stages.len() as u64);
        for &s in &self.fail_stages {
            fold(s as u64);
        }
        fold(self.flaky_stages.len() as u64);
        for &s in &self.flaky_stages {
            fold(s as u64);
        }
        match &self.streaming {
            None => fold(0),
            Some(s) => {
                fold(1);
                fold(s.cms_width as u64);
                fold(s.cms_depth as u64);
                fold(s.topk_capacity as u64);
                fold(u64::from(s.hll_precision));
            }
        }
        h
    }

    /// Applies a named fault profile.
    ///
    /// * `"none"` — the inert plan and no chaos (the default);
    /// * `"adversarial"` — the committed adversarial profile: the
    ///   [`FaultPlan::adversarial`] protocol faults, a permanently
    ///   failing `certs` stage (the report must degrade, not abort)
    ///   and a flaky `geomap` stage (the retry budget must absorb it).
    ///
    /// # Errors
    ///
    /// Returns the unknown profile name.
    pub fn apply_fault_profile(&mut self, profile: &str) -> Result<(), String> {
        match profile {
            "none" => {
                self.faults = FaultPlan::none();
                self.fail_stages.clear();
                self.flaky_stages.clear();
                Ok(())
            }
            "adversarial" => {
                self.faults = FaultPlan::adversarial(self.seed);
                self.fail_stages = vec![StageId::Certs];
                self.flaky_stages = vec![StageId::Geomap];
                Ok(())
            }
            other => Err(format!(
                "unknown fault profile `{other}` (expected `none` or `adversarial`)"
            )),
        }
    }
}

/// Everything the study measured.
///
/// Every section is an `Option`: a stage that degraded (see
/// [`PipelineTimings::degraded`]) leaves its sections `None` and the
/// study still returns the rest — a partial report, never an abort.
/// On a fault-free run with no chaos injected, every section the plan
/// produced is `Some` and [`StudyReport::is_complete`] holds.
#[derive(Debug)]
pub struct StudyReport {
    /// The generated ground-truth world.
    pub world: Option<World>,
    /// Sec. II: harvesting outcome.
    pub harvest: Option<HarvestOutcome>,
    /// Sec. III: the port scan (Fig. 1).
    pub scan: Option<ScanReport>,
    /// Sec. III: the certificate survey.
    pub certs: Option<CertSurvey>,
    /// Sec. IV: crawl funnel, Table I, languages, Fig. 2.
    pub crawl: Option<CrawlReport>,
    /// Sec. V: descriptor-request resolution.
    pub resolution: Option<ResolutionReport>,
    /// Sec. V: Table II.
    pub ranking: Option<Ranking>,
    /// Sec. V: Goldnet server-status forensics.
    pub forensics: Option<BotnetForensics>,
    /// Sec. V: share of published services ever requested.
    pub requested_published_share: Option<f64>,
    /// Sec. V: sketch-state snapshot when the study ran with
    /// [`StudyConfig::streaming`]; `None` on the exact path.
    pub sketch: Option<SketchSummary>,
    /// Sec. VI: client deanonymisation.
    pub deanon: Option<DeanonReport>,
    /// Sec. VII: tracking detection (when enabled).
    pub tracking: Option<TrackingReport>,
    /// Per-stage wall-clock timings, domain counters, gauges,
    /// histograms, and the degraded-stage record.
    pub stages: PipelineTimings,
    /// The span trace, when the run was started with
    /// [`crate::RunOptions::trace`] set (see [`Study::run_with`]).
    pub trace: Option<obs::Trace>,
}

impl StudyReport {
    /// Whether every planned stage completed (no degradations).
    pub fn is_complete(&self) -> bool {
        self.stages.degraded.is_empty()
    }

    /// The stages that failed and were degraded out of the run, in
    /// canonical order.
    pub fn degraded_stages(&self) -> &[DegradedStage] {
        &self.stages.degraded
    }
}

/// The study driver.
///
/// # Examples
///
/// ```no_run
/// use hs_landscape::{Study, StudyConfig};
///
/// let report = Study::new(StudyConfig::test_scale()).run();
/// assert!(report.is_complete());
/// assert!(report.harvest.as_ref().unwrap().onion_count() > 0);
/// ```
///
/// Selective runs return the raw artifact store instead of a report:
///
/// ```no_run
/// use hs_landscape::pipeline::StageId;
/// use hs_landscape::{Study, StudyConfig};
///
/// let run = Study::new(StudyConfig::test_scale()).run_until(StageId::PortScan);
/// assert!(run.artifacts.scan().total_open() > 0);
/// assert!(run.timings.skipped(StageId::DeanonWindow));
/// ```
#[derive(Clone, Debug)]
pub struct Study {
    config: StudyConfig,
}

impl Study {
    /// Creates a study.
    pub fn new(config: StudyConfig) -> Self {
        Study { config }
    }

    /// The configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Runs the full pipeline with the analysis stages in parallel.
    pub fn run(&self) -> StudyReport {
        self.run_full(ExecMode::parallel(), RunOptions::default())
    }

    /// Runs the full pipeline with explicit observability options
    /// (span tracing, stderr event stream).
    pub fn run_with(&self, opts: RunOptions) -> StudyReport {
        self.run_full(ExecMode::parallel(), opts)
    }

    /// Runs the full pipeline under an explicit execution mode —
    /// including the measurement-wave thread budget, e.g.
    /// `ExecMode::parallel().with_wave_threads(8)`. Artifacts are
    /// byte-identical at every thread count.
    pub fn run_mode(&self, mode: ExecMode, opts: RunOptions) -> StudyReport {
        self.run_full(mode, opts)
    }

    /// Runs the full pipeline with every stage on the calling thread —
    /// the reference order [`Study::run`] is tested against.
    pub fn run_sequential(&self) -> StudyReport {
        self.run_full(ExecMode::sequential(), RunOptions::default())
    }

    /// Runs the dependency closure of a single stage and returns the
    /// raw artifacts: exactly the work `stage` needs, nothing else.
    pub fn run_until(&self, stage: StageId) -> PipelineRun {
        self.run_stages(&[stage])
    }

    /// Runs the dependency closure of `targets` (analysis stages in
    /// parallel where the plan allows).
    pub fn run_stages(&self, targets: &[StageId]) -> PipelineRun {
        Pipeline::new(self.config.clone()).run(targets, ExecMode::parallel())
    }

    /// Runs the dependency closure of `targets` with explicit
    /// observability options.
    pub fn run_stages_with(&self, targets: &[StageId], opts: RunOptions) -> PipelineRun {
        Pipeline::new(self.config.clone()).run_with(targets, ExecMode::parallel(), opts)
    }

    /// Runs the dependency closure of `targets` under an explicit
    /// execution mode (see [`Study::run_mode`]).
    pub fn run_stages_mode(
        &self,
        targets: &[StageId],
        mode: ExecMode,
        opts: RunOptions,
    ) -> PipelineRun {
        Pipeline::new(self.config.clone()).run_with(targets, mode, opts)
    }

    fn run_full(&self, mode: ExecMode, opts: RunOptions) -> StudyReport {
        let mut targets = vec![
            StageId::Geomap,
            StageId::Certs,
            StageId::Crawl,
            StageId::Popularity,
        ];
        if self.config.run_tracking {
            targets.push(StageId::Tracking);
        }
        let run = Pipeline::new(self.config.clone()).run_with(&targets, mode, opts);
        let mut artifacts = run.artifacts;
        let (resolution, ranking, forensics, requested_published_share, sketch) =
            match artifacts.popularity.take() {
                Some(p) => (
                    Some(p.resolution),
                    Some(p.ranking),
                    Some(p.forensics),
                    Some(p.requested_published_share),
                    p.sketch,
                ),
                None => (None, None, None, None, None),
            };
        StudyReport {
            world: artifacts.world.take(),
            harvest: artifacts.harvest.take(),
            scan: artifacts.scan.take(),
            certs: artifacts.certs.take(),
            crawl: artifacts.crawl.take(),
            resolution,
            ranking,
            forensics,
            requested_published_share,
            sketch,
            deanon: artifacts.deanon.take(),
            tracking: artifacts.tracking.take(),
            stages: run.timings,
            trace: run.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_scale_study_runs_end_to_end() {
        let report = Study::new(StudyConfig::test_scale()).run();
        assert!(report.is_complete(), "{:?}", report.degraded_stages());
        let harvest = report.harvest.as_ref().unwrap();
        assert!(harvest.onion_count() > 50, "harvest crop");
        assert!(report.scan.as_ref().unwrap().total_open() > 0, "open ports");
        assert!(
            !report.crawl.as_ref().unwrap().classified.is_empty(),
            "pages classified"
        );
        assert!(
            report.resolution.as_ref().unwrap().total_requests > 0,
            "requests logged"
        );
        assert!(
            !report.ranking.as_ref().unwrap().rows().is_empty(),
            "ranking built"
        );
        assert!(report.tracking.is_none(), "tracking disabled at test scale");
        assert!(
            report.stages.skipped(StageId::Tracking),
            "tracking stage skipped"
        );
        assert_eq!(report.stages.executed.len(), 8, "eight stages ran");
    }

    #[test]
    fn unknown_fault_profile_is_rejected() {
        let mut cfg = StudyConfig::test_scale();
        assert!(cfg.apply_fault_profile("nope").is_err());
        cfg.apply_fault_profile("adversarial").unwrap();
        assert!(!cfg.faults.is_inert());
        assert_eq!(cfg.fail_stages, vec![StageId::Certs]);
        cfg.apply_fault_profile("none").unwrap();
        assert!(cfg.faults.is_inert());
        assert!(cfg.fail_stages.is_empty() && cfg.flaky_stages.is_empty());
    }
}

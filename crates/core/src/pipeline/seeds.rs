//! Centralized per-stage seed derivation.
//!
//! Every stage that consumes randomness derives its seed here from the
//! study's root seed and a named domain, instead of sprinkling magic
//! XOR constants through the pipeline (`cfg.seed ^ 0x7aff`,
//! `cfg.seed ^ 0x7ac`, …). The scheme is a plain XOR with a fixed
//! per-domain tag:
//!
//! * the derivation is stable — reports regenerated from the same root
//!   seed are reproducible across releases;
//! * domains are independent — no two domains share a tag, so no two
//!   stages ever run on the same stream;
//! * the legacy tags are preserved byte-for-byte, so results match the
//!   pre-pipeline monolith for any given root seed.
//!
//! New stages must add a variant (and a fresh tag) here rather than
//! deriving seeds locally.

/// A named consumer of study randomness.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SeedDomain {
    /// Ground-truth world generation (`World::generate`).
    World,
    /// Honest relay population and network protocol randomness.
    Network,
    /// Client descriptor-request traffic (Sec. V measurement load).
    Traffic,
    /// The 3-year consensus archive behind tracking detection
    /// (Sec. VII).
    Tracking,
    /// Deterministic fault injection (relay crashes, HSDir drops,
    /// service flaps, crawl flakes).
    Faults,
    /// Port-scan measurement waves (Sec. IV probe randomness).
    Scan,
    /// Streaming popularity sketch hashing (count-min / top-k / HLL).
    Sketch,
    /// Jittered retry backoff between stage attempts.
    Backoff,
}

impl SeedDomain {
    /// The domain's fixed tag. Tags must be unique; `Traffic` and
    /// `Tracking` keep the constants the monolithic pipeline used.
    const fn tag(self) -> u64 {
        match self {
            SeedDomain::World => 0,
            SeedDomain::Network => 0,
            SeedDomain::Traffic => 0x7aff,
            SeedDomain::Tracking => 0x7ac,
            SeedDomain::Faults => 0xfa17,
            SeedDomain::Scan => 0x5ca7,
            SeedDomain::Sketch => 0x6be7,
            SeedDomain::Backoff => 0xb0ff,
        }
    }
}

/// Derives the seed for `domain` from the study's root seed.
///
/// `World` and `Network` intentionally share the root seed itself:
/// they feed distinct generators (the world RNG vs the network RNG)
/// and the paper reproduction calibrates both against the same root.
pub fn stage_seed(root: u64, domain: SeedDomain) -> u64 {
    root ^ domain.tag()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_tags_preserved() {
        let root = 0x2013_0204;
        assert_eq!(stage_seed(root, SeedDomain::World), root);
        assert_eq!(stage_seed(root, SeedDomain::Network), root);
        assert_eq!(stage_seed(root, SeedDomain::Traffic), root ^ 0x7aff);
        assert_eq!(stage_seed(root, SeedDomain::Tracking), root ^ 0x7ac);
        assert_eq!(stage_seed(root, SeedDomain::Faults), root ^ 0xfa17);
        assert_eq!(stage_seed(root, SeedDomain::Scan), root ^ 0x5ca7);
        assert_eq!(stage_seed(root, SeedDomain::Sketch), root ^ 0x6be7);
        assert_eq!(stage_seed(root, SeedDomain::Backoff), root ^ 0xb0ff);
    }

    #[test]
    fn randomized_domains_are_pairwise_distinct() {
        let root = 99;
        let seeds = [
            stage_seed(root, SeedDomain::Traffic),
            stage_seed(root, SeedDomain::Tracking),
            stage_seed(root, SeedDomain::Faults),
            stage_seed(root, SeedDomain::Scan),
            stage_seed(root, SeedDomain::Sketch),
            stage_seed(root, SeedDomain::Backoff),
            stage_seed(root, SeedDomain::World),
        ];
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}

//! The typed artifact store stages read from and write into.
//!
//! Each slot is produced by exactly one stage (documented per field)
//! and read through a panicking accessor: asking for an artifact whose
//! stage has not run is a *scheduling* bug in the engine, never a
//! recoverable condition, so accessors `expect` with the producing
//! stage's name.
//!
//! Sim stages deposit both their measurement artifact *and* a snapshot
//! of the [`Network`] (and, where relevant, the [`TrafficDriver`])
//! they produced. Downstream sim stages **clone** their input snapshot
//! instead of mutating it, which is what makes `DeanonWindow` and
//! `PortScan` independent siblings of the harvest: each branches its
//! own deterministic timeline, so a selective run reproduces a full
//! run's artifacts byte for byte.

use std::sync::Arc;

use onion_crypto::onion::OnionAddress;
use tor_sim::network::{GuardObservation, Network};
use tor_sim::relay::RelayId;

use hs_content::{CertSurvey, CrawlReport};
use hs_deanon::GeoMap;
use hs_harvest::HarvestOutcome;
use hs_popularity::{
    BotnetForensics, Ranking, ResolutionReport, SketchSummary, StreamingPopularity, TrafficDriver,
};
use hs_portscan::ScanReport;
use hs_tracking::TrackingAnalysis;
use hs_world::{GeoDb, World};

use super::cache::{HarvestBundle, SetupBundle, StagePayload};
use super::stage::StageId;

/// Sec. VI results (assembled by the `Geomap` analysis stage).
#[derive(Clone, Debug)]
pub struct DeanonReport {
    /// The attacked service.
    pub target: OnionAddress,
    /// Unique client IPs deanonymised.
    pub unique_clients: u32,
    /// Analytic per-fetch catch probability.
    pub expected_rate: f64,
    /// Country census of the caught clients (Fig. 3).
    pub geomap: GeoMap,
}

/// Sec. VII results: one analysis per calendar year.
#[derive(Clone, Debug)]
pub struct TrackingReport {
    /// (label, analysis) per year.
    pub years: Vec<(String, TrackingAnalysis)>,
}

/// Raw output of the dedicated Sec. VI deanonymisation window, before
/// the geographic analysis runs.
#[derive(Clone, Debug)]
pub struct DeanonWindowOut {
    /// The Goldnet front end under attack (looked up from the world).
    pub target: OnionAddress,
    /// Signature hits logged at the attacker's guards.
    pub observations: Vec<GuardObservation>,
    /// Analytic per-fetch catch probability at window end.
    pub expected_rate: f64,
}

/// Sec. V outputs, bundled because they share the resolution log.
#[derive(Clone, Debug)]
pub struct PopularityOut {
    /// Descriptor-ID resolution over the harvest request log.
    pub resolution: ResolutionReport,
    /// Table II ranking.
    pub ranking: Ranking,
    /// Goldnet server-status forensics over the top-ranked onions.
    pub forensics: BotnetForensics,
    /// Share of published services ever requested.
    pub requested_published_share: f64,
    /// Sketch-state snapshot when the run used streaming aggregation;
    /// `None` on the exact path.
    pub sketch: Option<SketchSummary>,
}

/// Every artifact a pipeline run can produce. Slots start empty and
/// are filled by their producing stage.
#[derive(Debug, Default)]
pub struct ArtifactStore {
    // --- Setup ------------------------------------------------------
    pub(crate) world: Option<World>,
    pub(crate) geo: Option<GeoDb>,
    pub(crate) attacker_guards: Option<Vec<RelayId>>,
    pub(crate) net_setup: Option<Network>,
    pub(crate) traffic_setup: Option<TrafficDriver>,
    // --- Harvest ----------------------------------------------------
    pub(crate) harvest: Option<HarvestOutcome>,
    pub(crate) net_harvest: Option<Network>,
    pub(crate) traffic_harvest: Option<TrafficDriver>,
    /// Streaming sketch aggregator filled by the harvest when the
    /// study runs with `StudyConfig::streaming`; consumed by the
    /// popularity analysis in place of the materialized request log.
    pub(crate) streaming: Option<StreamingPopularity>,
    // --- DeanonWindow -----------------------------------------------
    pub(crate) deanon_window: Option<DeanonWindowOut>,
    // --- PortScan ---------------------------------------------------
    pub(crate) scan: Option<ScanReport>,
    // --- Analyses ---------------------------------------------------
    pub(crate) deanon: Option<DeanonReport>,
    pub(crate) certs: Option<CertSurvey>,
    pub(crate) crawl: Option<CrawlReport>,
    pub(crate) popularity: Option<PopularityOut>,
    pub(crate) tracking: Option<TrackingReport>,
}

macro_rules! accessor {
    ($(#[$doc:meta])* $name:ident / $try_name:ident: $ty:ty, $stage:literal) => {
        $(#[$doc])*
        ///
        /// # Panics
        ///
        /// Panics if the producing stage has not run.
        pub fn $name(&self) -> &$ty {
            self.$name
                .as_ref()
                .unwrap_or_else(|| panic!(concat!(
                    "artifact `", stringify!($name),
                    "` requested but stage `", $stage, "` has not run"
                )))
        }

        $(#[$doc])*
        ///
        /// Fallible variant for degradation-aware callers: a missing
        /// artifact (producing stage degraded out of the run) is an
        /// `Err` naming the producer, never a panic.
        pub fn $try_name(&self) -> Result<&$ty, String> {
            self.$name.as_ref().ok_or_else(|| {
                concat!(
                    "artifact `", stringify!($name),
                    "` unavailable: stage `", $stage, "` did not complete"
                )
                .to_owned()
            })
        }
    };
}

impl ArtifactStore {
    accessor!(
        /// The generated ground-truth world.
        world / try_world: World, "setup");
    accessor!(
        /// The IP-geography database.
        geo / try_geo: GeoDb, "setup");
    accessor!(
        /// The attacker's prepositioned guard relays.
        attacker_guards / try_attacker_guards: Vec<RelayId>, "setup");
    accessor!(
        /// Network snapshot after setup (world registered, guards
        /// prepositioned, first consensus voted).
        net_setup / try_net_setup: Network, "setup");
    accessor!(
        /// Traffic driver as constructed at setup time.
        traffic_setup / try_traffic_setup: TrafficDriver, "setup");
    accessor!(
        /// Sec. II harvesting outcome.
        harvest / try_harvest: HarvestOutcome, "harvest");
    accessor!(
        /// Network snapshot after the harvest window.
        net_harvest / try_net_harvest: Network, "harvest");
    accessor!(
        /// Traffic driver state after the harvest window.
        traffic_harvest / try_traffic_harvest: TrafficDriver, "harvest");
    accessor!(
        /// Raw Sec. VI window output.
        deanon_window / try_deanon_window: DeanonWindowOut, "deanon_window");
    accessor!(
        /// Sec. III port-scan report (Fig. 1).
        scan / try_scan: ScanReport, "port_scan");
    accessor!(
        /// Sec. VI deanonymisation report (Fig. 3).
        deanon / try_deanon: DeanonReport, "geomap");
    accessor!(
        /// Sec. III certificate survey.
        certs / try_certs: CertSurvey, "certs");
    accessor!(
        /// Sec. IV crawl funnel, Table I, languages, Fig. 2.
        crawl / try_crawl: CrawlReport, "crawl");
    accessor!(
        /// Sec. V resolution, ranking, forensics.
        popularity / try_popularity: PopularityOut, "popularity");
    accessor!(
        /// Sec. VII tracking detection.
        tracking / try_tracking: TrackingReport, "tracking");

    /// Bundles `stage`'s deposited slots into a cacheable payload, or
    /// `None` if any of them is missing (stage degraded or not run).
    pub fn extract(&self, stage: StageId) -> Option<StagePayload> {
        Some(match stage {
            StageId::Setup => StagePayload::Setup(Arc::new(SetupBundle {
                world: self.world.clone()?,
                geo: self.geo.clone()?,
                attacker_guards: self.attacker_guards.clone()?,
                net: self.net_setup.clone()?,
                traffic: self.traffic_setup.clone()?,
            })),
            StageId::Harvest => StagePayload::Harvest(Arc::new(HarvestBundle {
                harvest: self.harvest.clone()?,
                net: self.net_harvest.clone()?,
                traffic: self.traffic_harvest.clone()?,
                streaming: self.streaming.clone(),
            })),
            StageId::DeanonWindow => {
                StagePayload::DeanonWindow(Arc::new(self.deanon_window.clone()?))
            }
            StageId::PortScan => StagePayload::PortScan(Arc::new(self.scan.clone()?)),
            StageId::Geomap => StagePayload::Geomap(Arc::new(self.deanon.clone()?)),
            StageId::Certs => StagePayload::Certs(Arc::new(self.certs.clone()?)),
            StageId::Crawl => StagePayload::Crawl(Arc::new(self.crawl.clone()?)),
            StageId::Popularity => StagePayload::Popularity(Arc::new(self.popularity.clone()?)),
            StageId::Tracking => StagePayload::Tracking(Arc::new(self.tracking.clone()?)),
        })
    }

    /// Deposits a cached payload into the slots its stage would have
    /// filled, exactly as if the stage had just run.
    pub fn install(&mut self, payload: &StagePayload) {
        match payload {
            StagePayload::Setup(b) => {
                self.world = Some(b.world.clone());
                self.geo = Some(b.geo.clone());
                self.attacker_guards = Some(b.attacker_guards.clone());
                self.net_setup = Some(b.net.clone());
                self.traffic_setup = Some(b.traffic.clone());
            }
            StagePayload::Harvest(b) => {
                self.harvest = Some(b.harvest.clone());
                self.net_harvest = Some(b.net.clone());
                self.traffic_harvest = Some(b.traffic.clone());
                self.streaming = b.streaming.clone();
            }
            StagePayload::DeanonWindow(v) => self.deanon_window = Some((**v).clone()),
            StagePayload::PortScan(v) => self.scan = Some((**v).clone()),
            StagePayload::Geomap(v) => self.deanon = Some((**v).clone()),
            StagePayload::Certs(v) => self.certs = Some((**v).clone()),
            StagePayload::Crawl(v) => self.crawl = Some((**v).clone()),
            StagePayload::Popularity(v) => self.popularity = Some((**v).clone()),
            StagePayload::Tracking(v) => self.tracking = Some((**v).clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_store_panics_with_stage_name() {
        let store = ArtifactStore::default();
        let err = std::panic::catch_unwind(|| {
            let _ = store.scan();
        })
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().unwrap();
        assert!(msg.contains("`scan`"), "{msg}");
        assert!(msg.contains("`port_scan`"), "{msg}");
    }

    #[test]
    fn try_accessor_errors_instead_of_panicking() {
        let store = ArtifactStore::default();
        let err = store.try_scan().unwrap_err();
        assert!(err.contains("`scan`"), "{err}");
        assert!(err.contains("`port_scan`"), "{err}");
        let err = store.try_harvest().unwrap_err();
        assert!(err.contains("`harvest`"), "{err}");
    }
}

//! Cooperative run control: cancellation, deadline budgets, and the
//! cache/epoch handle a resident daemon threads through the engine.
//!
//! The engine never aborts a stage mid-body. Instead it consults the
//! query's [`RunControl`] at every *stage-attempt boundary* — before a
//! stage's first attempt, before each retry, and before dispatching
//! each analysis stage — and halts the remainder of the plan when the
//! budget is gone. A halted run is a well-formed [`PipelineRun`]: the
//! stages that completed keep their artifacts, the rest are listed in
//! `timings.halted`, and `PipelineRun::halt` names the reason. That is
//! what lets `landscaped` turn a cancelled or deadline-expired query
//! into a typed `PARTIAL` reply instead of a torn world.
//!
//! [`PipelineRun`]: super::engine::PipelineRun
//! [`PipelineRun::halt`]: super::engine::PipelineRun

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use super::cache::StageCache;

/// A shared cancellation flag, cloneable across threads.
///
/// The daemon hands one token to each admitted query; `CANCEL <id>`
/// flips it, and the engine observes the flip at the next
/// stage-attempt boundary. Cancellation is cooperative: a stage that
/// is already executing finishes (or degrades) normally, and only the
/// *remaining* plan is abandoned — which is what keeps a cancelled
/// query's world-state side effects at exactly zero.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Why a controlled run stopped before completing its plan.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Halt {
    /// The query's [`CancelToken`] was flipped.
    Cancelled,
    /// The wall-clock deadline passed.
    WallDeadline,
    /// The simulated-hours budget was exhausted.
    SimBudget,
}

impl Halt {
    /// Stable lowercase name used in timings JSON and protocol
    /// replies.
    pub fn name(self) -> &'static str {
        match self {
            Halt::Cancelled => "cancelled",
            Halt::WallDeadline => "wall_deadline",
            Halt::SimBudget => "sim_budget",
        }
    }
}

impl fmt::Display for Halt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-query budgets and shared-state handles for a controlled run.
///
/// The default control is unbounded and cacheless — `Pipeline::run_with`
/// uses it, so batch runs behave exactly as before.
#[derive(Clone, Default)]
pub struct RunControl {
    /// Cooperative cancellation flag, checked at attempt boundaries.
    pub cancel: CancelToken,
    /// Absolute wall-clock deadline; `None` means unbounded.
    pub wall_deadline: Option<Instant>,
    /// Budget of simulated hours the run may *advance* (cached and
    /// analysis stages advance zero); `None` means unbounded.
    pub sim_budget_hours: Option<u64>,
    /// Content-addressed stage cache; `None` disables caching.
    pub cache: Option<Arc<dyn StageCache>>,
    /// Salt folded into the Setup cache key. The daemon changes it on
    /// every `TICK`, which atomically invalidates the whole downstream
    /// key chain for the old epoch.
    pub epoch_salt: u64,
}

impl RunControl {
    /// Returns the reason to halt, if any budget is exhausted.
    /// `sim_hours_used` is the simulated time the run has advanced so
    /// far. Checks are ordered: explicit cancellation wins over
    /// deadlines so a `CANCEL` always reports as `cancelled`.
    pub fn check(&self, sim_hours_used: u64) -> Option<Halt> {
        if self.cancel.is_cancelled() {
            return Some(Halt::Cancelled);
        }
        if let Some(deadline) = self.wall_deadline {
            if Instant::now() >= deadline {
                return Some(Halt::WallDeadline);
            }
        }
        if let Some(budget) = self.sim_budget_hours {
            if sim_hours_used >= budget {
                return Some(Halt::SimBudget);
            }
        }
        None
    }
}

impl fmt::Debug for RunControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunControl")
            .field("cancel", &self.cancel)
            .field("wall_deadline", &self.wall_deadline)
            .field("sim_budget_hours", &self.sim_budget_hours)
            .field("cache", &self.cache.as_ref().map(|_| "StageCache"))
            .field("epoch_salt", &self.epoch_salt)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn default_control_never_halts() {
        let ctl = RunControl::default();
        assert_eq!(ctl.check(0), None);
        assert_eq!(ctl.check(u64::MAX), None);
    }

    #[test]
    fn cancellation_wins_over_deadlines() {
        let ctl = RunControl {
            wall_deadline: Some(Instant::now()),
            sim_budget_hours: Some(0),
            ..RunControl::default()
        };
        assert_eq!(ctl.check(0), Some(Halt::WallDeadline));
        ctl.cancel.cancel();
        assert_eq!(ctl.check(0), Some(Halt::Cancelled));
    }

    #[test]
    fn sim_budget_boundary_is_inclusive() {
        let ctl = RunControl {
            sim_budget_hours: Some(10),
            ..RunControl::default()
        };
        assert_eq!(ctl.check(9), None);
        assert_eq!(ctl.check(10), Some(Halt::SimBudget));
    }

    #[test]
    fn halt_names_are_stable() {
        assert_eq!(Halt::Cancelled.name(), "cancelled");
        assert_eq!(Halt::WallDeadline.name(), "wall_deadline");
        assert_eq!(Halt::SimBudget.name(), "sim_budget");
        assert_eq!(Halt::SimBudget.to_string(), "sim_budget");
    }
}

//! Per-stage instrumentation: wall-clock timings plus the stage's
//! metric registry output (counters, gauges, log2 histograms).
//!
//! Every stage execution records how long it ran, a handful of
//! domain-meaningful counters (descriptors harvested, pages crawled,
//! consensuses scanned, …), and — since the observability layer —
//! gauges and distribution histograms. A [`PipelineTimings`] also
//! remembers which stages the plan *skipped*, so selective runs can
//! prove they did not pay for work they did not need.
//!
//! ## Wall-clock semantics
//!
//! Two different "total wall" numbers exist and they measure different
//! things:
//!
//! * [`PipelineTimings::total_wall`] — the **sum** of per-stage body
//!   durations. The analysis wave runs stages in parallel, so this is
//!   CPU-ish busy time and can exceed real time.
//! * [`PipelineTimings::elapsed`] — the run's true **elapsed** wall
//!   time, measured once around the whole pipeline. This is what a
//!   stopwatch would show.
//!
//! `to_json` exposes both as `summed_wall_ms` and `elapsed_wall_ms`.

use std::fmt::Write as _;
use std::time::Duration;

use obs::Histogram;

use super::stage::StageId;

/// One executed stage's instrumentation record.
#[derive(Clone, Debug)]
pub struct StageTiming {
    /// Which stage ran.
    pub stage: StageId,
    /// Wall-clock duration of the stage body (final attempt included;
    /// failed attempts are folded in).
    pub wall: Duration,
    /// Domain counters, e.g. `("descriptors", 1234)`, in the stage's
    /// historical emission order.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauges (point-in-time ratios and levels), e.g.
    /// `("scan.coverage", 0.87)`.
    pub gauges: Vec<(&'static str, f64)>,
    /// Distribution histograms, e.g. `("scan.fetch_attempts", …)`.
    pub hists: Vec<(&'static str, Histogram)>,
}

impl StageTiming {
    /// Builds a record from a stage's metric registry.
    pub fn from_registry(stage: StageId, wall: Duration, registry: obs::Registry) -> Self {
        let (counters, gauges, hists) = registry.into_parts();
        StageTiming {
            stage,
            wall,
            counters,
            gauges,
            hists,
        }
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }
}

/// A stage that failed (after exhausting its retry budget) and was
/// degraded out of the run instead of aborting the study.
#[derive(Clone, Debug)]
pub struct DegradedStage {
    /// Which stage failed.
    pub stage: StageId,
    /// The error (or extracted panic message) of the final attempt,
    /// or a note that an upstream dependency degraded first.
    pub error: String,
    /// How many attempts ran. Zero when the stage never ran because a
    /// dependency had already degraded.
    pub attempts: u32,
}

/// The full instrumentation record of one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PipelineTimings {
    /// Stages that executed, in execution order.
    pub executed: Vec<StageTiming>,
    /// Stages the plan skipped, in canonical order.
    pub skipped: Vec<StageId>,
    /// Stages that failed and degraded, in canonical [`StageId`] order.
    pub degraded: Vec<DegradedStage>,
    /// Stages the plan wanted but a controlled run abandoned when its
    /// budget expired (cancellation, wall deadline, sim budget), in
    /// canonical order. Always empty for uncontrolled runs.
    pub halted: Vec<StageId>,
    /// True elapsed wall time of the whole run, measured once around
    /// the pipeline. Distinct from [`PipelineTimings::total_wall`],
    /// which sums per-stage durations and over-counts the parallel
    /// analysis wave.
    pub elapsed: Duration,
}

impl PipelineTimings {
    /// The record for `stage`, if it executed.
    pub fn stage(&self, stage: StageId) -> Option<&StageTiming> {
        self.executed.iter().find(|t| t.stage == stage)
    }

    /// Whether the plan skipped `stage`.
    pub fn skipped(&self, stage: StageId) -> bool {
        self.skipped.contains(&stage)
    }

    /// The degradation record for `stage`, if it failed.
    pub fn degraded(&self, stage: StageId) -> Option<&DegradedStage> {
        self.degraded.iter().find(|d| d.stage == stage)
    }

    /// **Summed** wall-clock time across executed stage bodies.
    /// Parallel analysis stages overlap in real time, so this is
    /// CPU-ish busy time, not elapsed time — see
    /// [`PipelineTimings::elapsed`] for the stopwatch number.
    pub fn total_wall(&self) -> Duration {
        self.executed.iter().map(|t| t.wall).sum()
    }

    /// Sums a counter across every executed stage that reports it
    /// (e.g. `"sha1_digests"` over the sim stages).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.executed.iter().filter_map(|t| t.counter(name)).sum()
    }

    /// Every histogram recorded by any executed stage, as
    /// `(owner stage, metric name, histogram)` in execution order.
    pub fn histograms(&self) -> Vec<(StageId, &'static str, &Histogram)> {
        self.executed
            .iter()
            .flat_map(|t| t.hists.iter().map(move |(n, h)| (t.stage, *n, h)))
            .collect()
    }

    /// Merges every same-named histogram across stages into one.
    pub fn hist_total(&self, name: &str) -> Histogram {
        let mut total = Histogram::new();
        for t in &self.executed {
            if let Some(h) = t.hist(name) {
                total.merge(h);
            }
        }
        total
    }

    /// Flattens the timings into a wall-style snapshot so the batch
    /// pipeline can reuse the daemon's Prometheus renderer: per-stage
    /// counters and histograms become `stage`-labelled series, stage
    /// wall durations a `stage_wall_us` histogram sample each, and the
    /// run totals plain gauges. Every value here is still a pure
    /// function of the seed except the wall durations — which is
    /// exactly why this export is opt-in (`--metrics-format prom`) and
    /// never part of a committed byte-stable baseline.
    pub fn to_prom_snapshot(&self) -> obs::WallSnapshot {
        let reg = obs::WallRegistry::new();
        let wall_hist = reg.histogram("stage_wall_us", &[]);
        for t in &self.executed {
            let stage = t.stage.to_string();
            let labels: [(&str, &str); 1] = [("stage", &stage)];
            wall_hist.observe(t.wall.as_micros() as u64);
            for (name, value) in &t.counters {
                reg.counter(name, &labels).add(*value);
            }
            for (name, value) in &t.gauges {
                reg.gauge(name, &labels).set(*value);
            }
        }
        reg.gauge("stages_executed", &[])
            .set(self.executed.len() as f64);
        reg.gauge("stages_skipped", &[])
            .set(self.skipped.len() as f64);
        reg.gauge("stages_degraded", &[])
            .set(self.degraded.len() as f64);
        reg.gauge("stages_halted", &[])
            .set(self.halted.len() as f64);
        reg.gauge("elapsed_wall_us", &[])
            .set(self.elapsed.as_micros() as f64);
        let mut snap = reg.snapshot();
        // Stage histograms are spliced in directly: bucket contents
        // are already final, and replaying samples through a handle
        // would lose exact values to bucket resolution.
        for t in &self.executed {
            let stage = t.stage.to_string();
            for (name, h) in &t.hists {
                snap.hists.push((
                    obs::wall::MetricId::new(name, &[("stage", &stage)]),
                    h.clone(),
                ));
            }
        }
        snap.sort();
        snap
    }

    /// Renders the timings as Prometheus text exposition under the
    /// `landscape` namespace (see [`PipelineTimings::to_prom_snapshot`]).
    pub fn to_prom(&self) -> String {
        obs::prom::render(&self.to_prom_snapshot(), "landscape")
    }

    /// Machine-readable JSON (hand-rolled; the workspace carries no
    /// serde). Stage names and metric names are static identifiers, so
    /// no escaping is required outside error strings.
    ///
    /// Layout compatibility: the per-stage `"stage"` lines and the
    /// `"skipped"` line are byte-identical to the historical format —
    /// the committed bench/faults baselines grep exactly those lines.
    /// The observability extensions (`summed_wall_ms`,
    /// `elapsed_wall_ms`, `gauges`, `histograms`) use `"metric"` /
    /// `"owner"` field names precisely so they can never collide with
    /// that grep. The `degraded` section still only appears when a
    /// stage actually failed.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"stages\": [\n");
        for (i, t) in self.executed.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"stage\": \"{}\", \"wall_ms\": {:.3}, \"counters\": {{",
                t.stage,
                t.wall.as_secs_f64() * 1e3
            );
            for (j, (name, value)) in t.counters.iter().enumerate() {
                let _ = write!(out, "\"{name}\": {value}");
                if j + 1 < t.counters.len() {
                    out.push_str(", ");
                }
            }
            out.push_str("}}");
            if i + 1 < self.executed.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n  \"skipped\": [");
        for (i, s) in self.skipped.iter().enumerate() {
            let _ = write!(out, "\"{s}\"");
            if i + 1 < self.skipped.len() {
                out.push_str(", ");
            }
        }
        out.push(']');
        // Both wall-clock notions, explicitly named (see module docs).
        let _ = write!(
            out,
            ",\n  \"summed_wall_ms\": {:.3},\n  \"elapsed_wall_ms\": {:.3}",
            self.total_wall().as_secs_f64() * 1e3,
            self.elapsed.as_secs_f64() * 1e3
        );
        out.push_str(",\n  \"gauges\": [");
        let gauges: Vec<String> = self
            .executed
            .iter()
            .flat_map(|t| {
                t.gauges.iter().map(move |(name, value)| {
                    format!(
                        "\n    {{\"metric\": \"{}\", \"owner\": \"{}\", \"value\": {value}}}",
                        name, t.stage
                    )
                })
            })
            .collect();
        out.push_str(&gauges.join(","));
        if !gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push(']');
        out.push_str(",\n  \"histograms\": [");
        let hists: Vec<String> = self
            .histograms()
            .iter()
            .map(|(owner, name, h)| format!("\n    {}", h.to_json(name, &owner.to_string())))
            .collect();
        out.push_str(&hists.join(","));
        if !hists.is_empty() {
            out.push_str("\n  ");
        }
        out.push(']');
        // The degraded section only appears when a stage actually
        // failed, so fault-free runs keep the exact historical layout
        // (the bench baseline diff depends on it).
        if !self.degraded.is_empty() {
            out.push_str(",\n  \"degraded\": [\n");
            for (i, d) in self.degraded.iter().enumerate() {
                let _ = write!(
                    out,
                    "    {{\"stage\": \"{}\", \"attempts\": {}, \"error\": \"{}\"}}",
                    d.stage,
                    d.attempts,
                    obs::escape_json(&d.error)
                );
                if i + 1 < self.degraded.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str("  ]");
        }
        // Same gating for the halted section: it only exists for
        // controlled (daemon) runs that actually ran out of budget, so
        // batch-mode JSON never changes shape.
        if !self.halted.is_empty() {
            out.push_str(",\n  \"halted\": [");
            for (i, s) in self.halted.iter().enumerate() {
                let _ = write!(out, "\"{s}\"");
                if i + 1 < self.halted.len() {
                    out.push_str(", ");
                }
            }
            out.push(']');
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineTimings {
        let mut scan_hist = Histogram::new();
        scan_hist.record(1);
        scan_hist.record(3);
        PipelineTimings {
            executed: vec![
                StageTiming {
                    stage: StageId::Setup,
                    wall: Duration::from_micros(1500),
                    counters: vec![("relays", 120), ("services", 400)],
                    gauges: Vec::new(),
                    hists: Vec::new(),
                },
                StageTiming {
                    stage: StageId::Harvest,
                    wall: Duration::from_millis(20),
                    counters: vec![("descriptors", 390)],
                    gauges: vec![("harvest.coverage", 0.875)],
                    hists: vec![("harvest.descriptors_per_relay", scan_hist)],
                },
            ],
            skipped: vec![StageId::DeanonWindow, StageId::Tracking],
            degraded: Vec::new(),
            halted: Vec::new(),
            elapsed: Duration::from_millis(15),
        }
    }

    #[test]
    fn lookup_and_totals() {
        let t = sample();
        assert_eq!(
            t.stage(StageId::Setup).unwrap().counter("relays"),
            Some(120)
        );
        assert_eq!(t.stage(StageId::Setup).unwrap().counter("nope"), None);
        assert!(t.stage(StageId::Crawl).is_none());
        assert!(t.skipped(StageId::Tracking));
        assert!(!t.skipped(StageId::Harvest));
        assert_eq!(t.total_wall(), Duration::from_micros(21_500));
        assert_eq!(t.counter_total("services"), 400);
        assert_eq!(t.counter_total("absent"), 0);
        // The elapsed clock is independent of the per-stage sum.
        assert_eq!(t.elapsed, Duration::from_millis(15));
        let hists = t.histograms();
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].0, StageId::Harvest);
        assert_eq!(t.hist_total("harvest.descriptors_per_relay").count(), 2);
        assert_eq!(t.hist_total("absent").count(), 0);
        assert_eq!(
            t.stage(StageId::Harvest).unwrap().gauge("harvest.coverage"),
            Some(0.875)
        );
    }

    #[test]
    fn from_registry_preserves_order() {
        let mut reg = obs::Registry::new();
        reg.inc("beta", 2);
        reg.inc("alpha", 1);
        reg.gauge("ratio", 0.25);
        reg.record("depth", 7);
        let t = StageTiming::from_registry(StageId::Crawl, Duration::from_millis(1), reg);
        assert_eq!(t.counters, vec![("beta", 2), ("alpha", 1)]);
        assert_eq!(t.gauge("ratio"), Some(0.25));
        assert_eq!(t.hist("depth").map(|h| h.count()), Some(1));
    }

    #[test]
    fn json_is_well_formed() {
        let json = sample().to_json();
        assert!(json.contains("\"stage\": \"setup\""));
        assert!(json.contains("\"relays\": 120"));
        assert!(json.contains("\"skipped\": [\"deanon_window\", \"tracking\"]"));
        // Both wall-clock notions are exposed.
        assert!(json.contains("\"summed_wall_ms\": 21.500"));
        assert!(json.contains("\"elapsed_wall_ms\": 15.000"));
        // Observability sections use metric/owner keys, never "stage",
        // so the committed baseline greps cannot match them.
        assert!(json.contains("\"metric\": \"harvest.descriptors_per_relay\""));
        assert!(json.contains("\"owner\": \"harvest\""));
        assert!(json.contains("\"p50\": "));
        assert!(json.contains(
            "\"metric\": \"harvest.coverage\", \"owner\": \"harvest\", \"value\": 0.875"
        ));
        for line in json.lines() {
            if line.contains("\"metric\"") {
                assert!(
                    !line.contains("\"stage\""),
                    "metric line matches baseline grep: {line}"
                );
            }
        }
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        obs::trace::validate_json(&json).expect("timings JSON parses");
        // No degraded stages → no degraded section, preserving the
        // historical layout byte-for-byte.
        assert!(!json.contains("degraded"));
        // Same for the halted section.
        assert!(!json.contains("halted"));
    }

    #[test]
    fn prom_export_parses_and_labels_stages() {
        let text = sample().to_prom();
        let parsed = obs::prom::parse_exposition(&text).expect("timings exposition parses");
        assert_eq!(
            parsed.value("landscape_relays_total", &[("stage", "setup")]),
            Some(120.0)
        );
        assert_eq!(
            parsed.value("landscape_descriptors_total", &[("stage", "harvest")]),
            Some(390.0)
        );
        assert_eq!(
            parsed.value("landscape_harvest_coverage", &[("stage", "harvest")]),
            Some(0.875)
        );
        assert_eq!(parsed.value("landscape_stages_executed", &[]), Some(2.0));
        // The stage histogram arrived bucket-for-bucket: two samples.
        assert_eq!(
            parsed.value(
                "landscape_harvest_descriptors_per_relay_count",
                &[("stage", "harvest")]
            ),
            Some(2.0)
        );
        assert_eq!(
            parsed.value("landscape_stage_wall_us_count", &[]),
            Some(2.0)
        );
    }

    #[test]
    fn halted_section_appears_only_when_nonempty() {
        let mut t = sample();
        t.halted = vec![StageId::PortScan, StageId::Certs];
        let json = t.to_json();
        assert!(json.contains("\"halted\": [\"port_scan\", \"certs\"]"));
        obs::trace::validate_json(&json).expect("halted JSON parses");
    }

    #[test]
    fn empty_metric_sections_stay_compact() {
        let mut t = sample();
        for s in &mut t.executed {
            s.gauges.clear();
            s.hists.clear();
        }
        let json = t.to_json();
        assert!(json.contains("\"gauges\": []"));
        assert!(json.contains("\"histograms\": []"));
        obs::trace::validate_json(&json).expect("empty sections parse");
    }

    #[test]
    fn degraded_section_appears_and_escapes() {
        let mut t = sample();
        t.degraded = vec![
            DegradedStage {
                stage: StageId::Certs,
                error: "injected \"quote\"\nand newline".to_owned(),
                attempts: 2,
            },
            DegradedStage {
                stage: StageId::Crawl,
                error: "dependency `certs` degraded".to_owned(),
                attempts: 0,
            },
        ];
        let json = t.to_json();
        assert!(json.contains("\"degraded\": ["));
        assert!(json.contains("{\"stage\": \"certs\", \"attempts\": 2, \"error\": \"injected \\\"quote\\\"\\nand newline\"}"));
        assert!(json.contains("{\"stage\": \"crawl\", \"attempts\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        obs::trace::validate_json(&json).expect("degraded JSON parses");
        assert!(t.degraded(StageId::Certs).is_some());
        assert!(t.degraded(StageId::Setup).is_none());
    }
}

//! Per-stage instrumentation: wall-clock timings plus domain counters.
//!
//! Every stage execution records how long it ran and a handful of
//! domain-meaningful counters (descriptors harvested, pages crawled,
//! consensuses scanned, …). A [`PipelineTimings`] also remembers which
//! stages the plan *skipped*, so selective runs can prove they did not
//! pay for work they did not need.

use std::fmt::Write as _;
use std::time::Duration;

use super::stage::StageId;

/// One executed stage's instrumentation record.
#[derive(Clone, Debug)]
pub struct StageTiming {
    /// Which stage ran.
    pub stage: StageId,
    /// Wall-clock duration of the stage body.
    pub wall: Duration,
    /// Domain counters, e.g. `("descriptors", 1234)`.
    pub counters: Vec<(&'static str, u64)>,
}

impl StageTiming {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

/// A stage that failed (after exhausting its retry budget) and was
/// degraded out of the run instead of aborting the study.
#[derive(Clone, Debug)]
pub struct DegradedStage {
    /// Which stage failed.
    pub stage: StageId,
    /// The error (or extracted panic message) of the final attempt,
    /// or a note that an upstream dependency degraded first.
    pub error: String,
    /// How many attempts ran. Zero when the stage never ran because a
    /// dependency had already degraded.
    pub attempts: u32,
}

/// The full instrumentation record of one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PipelineTimings {
    /// Stages that executed, in execution order.
    pub executed: Vec<StageTiming>,
    /// Stages the plan skipped, in canonical order.
    pub skipped: Vec<StageId>,
    /// Stages that failed and degraded, in canonical [`StageId`] order.
    pub degraded: Vec<DegradedStage>,
}

impl PipelineTimings {
    /// The record for `stage`, if it executed.
    pub fn stage(&self, stage: StageId) -> Option<&StageTiming> {
        self.executed.iter().find(|t| t.stage == stage)
    }

    /// Whether the plan skipped `stage`.
    pub fn skipped(&self, stage: StageId) -> bool {
        self.skipped.contains(&stage)
    }

    /// The degradation record for `stage`, if it failed.
    pub fn degraded(&self, stage: StageId) -> Option<&DegradedStage> {
        self.degraded.iter().find(|d| d.stage == stage)
    }

    /// Total wall-clock time across executed stages. Parallel analysis
    /// stages overlap, so this is CPU-ish time, not elapsed time.
    pub fn total_wall(&self) -> Duration {
        self.executed.iter().map(|t| t.wall).sum()
    }

    /// Sums a counter across every executed stage that reports it
    /// (e.g. `"sha1_digests"` over the sim stages).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.executed.iter().filter_map(|t| t.counter(name)).sum()
    }

    /// Machine-readable JSON (hand-rolled; the workspace carries no
    /// serde). Stage names and counter names are static identifiers, so
    /// no escaping is required.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"stages\": [\n");
        for (i, t) in self.executed.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"stage\": \"{}\", \"wall_ms\": {:.3}, \"counters\": {{",
                t.stage,
                t.wall.as_secs_f64() * 1e3
            );
            for (j, (name, value)) in t.counters.iter().enumerate() {
                let _ = write!(out, "\"{name}\": {value}");
                if j + 1 < t.counters.len() {
                    out.push_str(", ");
                }
            }
            out.push_str("}}");
            if i + 1 < self.executed.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n  \"skipped\": [");
        for (i, s) in self.skipped.iter().enumerate() {
            let _ = write!(out, "\"{s}\"");
            if i + 1 < self.skipped.len() {
                out.push_str(", ");
            }
        }
        out.push(']');
        // The degraded section only appears when a stage actually
        // failed, so fault-free runs keep the exact historical layout
        // (the bench baseline diff depends on it).
        if !self.degraded.is_empty() {
            out.push_str(",\n  \"degraded\": [\n");
            for (i, d) in self.degraded.iter().enumerate() {
                let _ = write!(
                    out,
                    "    {{\"stage\": \"{}\", \"attempts\": {}, \"error\": \"{}\"}}",
                    d.stage,
                    d.attempts,
                    escape_json(&d.error)
                );
                if i + 1 < self.degraded.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str("  ]");
        }
        out.push_str("\n}\n");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal. Error
/// messages are the only non-static strings in the file, and panic
/// payloads can contain anything.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineTimings {
        PipelineTimings {
            executed: vec![
                StageTiming {
                    stage: StageId::Setup,
                    wall: Duration::from_micros(1500),
                    counters: vec![("relays", 120), ("services", 400)],
                },
                StageTiming {
                    stage: StageId::Harvest,
                    wall: Duration::from_millis(20),
                    counters: vec![("descriptors", 390)],
                },
            ],
            skipped: vec![StageId::DeanonWindow, StageId::Tracking],
            degraded: Vec::new(),
        }
    }

    #[test]
    fn lookup_and_totals() {
        let t = sample();
        assert_eq!(
            t.stage(StageId::Setup).unwrap().counter("relays"),
            Some(120)
        );
        assert_eq!(t.stage(StageId::Setup).unwrap().counter("nope"), None);
        assert!(t.stage(StageId::Crawl).is_none());
        assert!(t.skipped(StageId::Tracking));
        assert!(!t.skipped(StageId::Harvest));
        assert_eq!(t.total_wall(), Duration::from_micros(21_500));
        assert_eq!(t.counter_total("services"), 400);
        assert_eq!(t.counter_total("absent"), 0);
    }

    #[test]
    fn json_is_well_formed() {
        let json = sample().to_json();
        assert!(json.contains("\"stage\": \"setup\""));
        assert!(json.contains("\"relays\": 120"));
        assert!(json.contains("\"skipped\": [\"deanon_window\", \"tracking\"]"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // No degraded stages → no degraded section, preserving the
        // historical layout byte-for-byte.
        assert!(!json.contains("degraded"));
    }

    #[test]
    fn degraded_section_appears_and_escapes() {
        let mut t = sample();
        t.degraded = vec![
            DegradedStage {
                stage: StageId::Certs,
                error: "injected \"quote\"\nand newline".to_owned(),
                attempts: 2,
            },
            DegradedStage {
                stage: StageId::Crawl,
                error: "dependency `certs` degraded".to_owned(),
                attempts: 0,
            },
        ];
        let json = t.to_json();
        assert!(json.contains("\"degraded\": ["));
        assert!(json.contains("{\"stage\": \"certs\", \"attempts\": 2, \"error\": \"injected \\\"quote\\\"\\nand newline\"}"));
        assert!(json.contains("{\"stage\": \"crawl\", \"attempts\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(t.degraded(StageId::Certs).is_some());
        assert!(t.degraded(StageId::Setup).is_none());
    }
}

//! The pipeline engine: plans a stage closure, executes sim stages in
//! canonical order, and fans the pure analysis stages out across
//! threads.
//!
//! Execution contract:
//!
//! * **Sim stages** run sequentially in [`StageId::ALL`] order. Each
//!   clones its input [`Network`] snapshot from the store, so sibling
//!   stages (`DeanonWindow`, `PortScan`) branch independent timelines
//!   off the post-harvest state — running or skipping one never
//!   perturbs the other.
//! * **Analysis stages** only read sim artifacts (the stage graph has
//!   no analysis→analysis edge), so all of them launch as one parallel
//!   wave under [`crossbeam::thread::scope`]. Results are joined and
//!   deposited in canonical order; with [`ExecMode::Sequential`] they
//!   run inline instead, which must — and is tested to — produce the
//!   identical [`ArtifactStore`].
//! * Randomness comes only from seeds derived in
//!   [`super::seeds::stage_seed`]; wall-clock time is never consulted
//!   except for instrumentation.

use std::time::Instant;

use onion_crypto::onion::OnionAddress;
use tor_sim::clock::SimTime;
use tor_sim::network::{HotPathCounters, NetworkBuilder};

use hs_content::{CertSurvey, Crawler};
use hs_deanon::{DeanonAttack, GeoMap};
use hs_harvest::Harvester;
use hs_popularity::{
    ranking::requested_published_share, BotnetForensics, Ranking, Resolver, TrafficConfig,
    TrafficDriver,
};
use hs_portscan::{ScanConfig, Scanner};
use hs_tracking::{scenario, ConsensusArchive, DetectorConfig, HistoryConfig, TrackingDetector};
use hs_world::{GeoDb, World, WorldConfig};

use super::artifacts::{
    ArtifactStore, DeanonReport, DeanonWindowOut, PopularityOut, TrackingReport,
};
use super::seeds::{stage_seed, SeedDomain};
use super::stage::{StageId, StageKind};
use super::timing::{PipelineTimings, StageTiming};
use crate::study::StudyConfig;

/// How analysis stages execute.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecMode {
    /// One thread per analysis stage (the default).
    #[default]
    Parallel,
    /// Everything inline on the calling thread — the reference order
    /// the parallel mode is tested against.
    Sequential,
}

/// The result of one pipeline run: the filled artifact slots plus the
/// per-stage instrumentation.
#[derive(Debug)]
pub struct PipelineRun {
    /// Artifacts produced by the executed stages.
    pub artifacts: ArtifactStore,
    /// What ran, how long it took, and what was skipped.
    pub timings: PipelineTimings,
}

/// The engine. Owns nothing but the configuration; every run starts
/// from an empty store.
#[derive(Clone, Debug)]
pub struct Pipeline {
    cfg: StudyConfig,
}

type Counters = Vec<(&'static str, u64)>;

/// Appends the network hot-path work done during a sim stage, so cache
/// behaviour (and any determinism drift in it) is visible per stage in
/// `bench_stages.json`.
fn push_hot(counters: &mut Counters, hot: HotPathCounters) {
    counters.push(("sha1_digests", hot.sha1_digests));
    counters.push(("desc_cache_hits", hot.desc_cache_hits));
    counters.push(("desc_cache_misses", hot.desc_cache_misses));
    counters.push(("fetches", hot.fetches));
}

/// The value an analysis stage hands back to the joiner.
enum AnalysisOut {
    Geomap(DeanonReport),
    Certs(CertSurvey),
    Crawl(Box<hs_content::CrawlReport>),
    Popularity(Box<PopularityOut>),
    Tracking(TrackingReport),
}

impl Pipeline {
    /// Creates an engine for `cfg`.
    pub fn new(cfg: StudyConfig) -> Self {
        Pipeline { cfg }
    }

    /// Runs the dependency closure of `targets`, skipping every stage
    /// the targets do not need.
    pub fn run(&self, targets: &[StageId], mode: ExecMode) -> PipelineRun {
        let plan = StageId::closure(targets);
        let mut store = ArtifactStore::default();
        let mut timings = PipelineTimings {
            executed: Vec::with_capacity(plan.len()),
            skipped: StageId::ALL
                .iter()
                .copied()
                .filter(|s| !plan.contains(s))
                .collect(),
        };

        // Sim prefix: strictly sequential, canonical order.
        for &stage in plan.iter().filter(|s| s.kind() == StageKind::Sim) {
            let started = Instant::now();
            let counters = match stage {
                StageId::Setup => self.sim_setup(&mut store),
                StageId::Harvest => self.sim_harvest(&mut store),
                StageId::DeanonWindow => self.sim_deanon_window(&mut store),
                StageId::PortScan => self.sim_port_scan(&mut store),
                _ => unreachable!("analysis stage in sim prefix"),
            };
            timings.executed.push(StageTiming {
                stage,
                wall: started.elapsed(),
                counters,
            });
        }

        // Analysis wave: pure functions of the sim artifacts.
        let analyses: Vec<StageId> = plan
            .iter()
            .copied()
            .filter(|s| s.kind() == StageKind::Analysis)
            .collect();
        let mut results: Vec<(StageId, StageTiming, AnalysisOut)> = match mode {
            ExecMode::Sequential => analyses
                .iter()
                .map(|&stage| run_analysis(stage, &self.cfg, &store))
                .collect(),
            ExecMode::Parallel => {
                let cfg = &self.cfg;
                let shared = &store;
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = analyses
                        .iter()
                        .map(|&stage| scope.spawn(move |_| run_analysis(stage, cfg, shared)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("analysis stage panicked"))
                        .collect()
                })
                .expect("analysis scope panicked")
            }
        };
        // Join in canonical order regardless of completion order.
        results.sort_by_key(|(stage, _, _)| *stage);
        for (_, timing, out) in results {
            match out {
                AnalysisOut::Geomap(v) => store.deanon = Some(v),
                AnalysisOut::Certs(v) => store.certs = Some(v),
                AnalysisOut::Crawl(v) => store.crawl = Some(*v),
                AnalysisOut::Popularity(v) => store.popularity = Some(*v),
                AnalysisOut::Tracking(v) => store.tracking = Some(v),
            }
            timings.executed.push(timing);
        }

        PipelineRun {
            artifacts: store,
            timings,
        }
    }

    /// World generation, network build, guard prepositioning, traffic
    /// driver construction.
    fn sim_setup(&self, store: &mut ArtifactStore) -> Counters {
        let cfg = &self.cfg;
        let world = World::generate(
            WorldConfig::default()
                .with_seed(stage_seed(cfg.seed, SeedDomain::World))
                .with_scale(cfg.scale),
        );
        let geo = GeoDb::new();
        let mut net = NetworkBuilder::new()
            .relays(cfg.relays)
            .seed(stage_seed(cfg.seed, SeedDomain::Network))
            .start(SimTime::from_ymd(2013, 2, 1))
            .build();
        world.register_all(&mut net);
        // The attacker's guard relays run long before the measurement:
        // victims' guard sets must have had the chance to include them.
        let attacker_guards = DeanonAttack::preposition_guards(&mut net, &cfg.deanon);
        net.advance_hours(1);
        let traffic = TrafficDriver::new(
            &mut net,
            &world,
            &geo,
            TrafficConfig {
                clients: cfg.traffic_clients,
                seed: stage_seed(cfg.seed, SeedDomain::Traffic),
            },
        );
        let mut counters = vec![
            ("relays", cfg.relays as u64),
            ("services", world.services().len() as u64),
            ("traffic_clients", traffic.clients().len() as u64),
        ];
        push_hot(&mut counters, net.hot_counters());
        store.world = Some(world);
        store.geo = Some(geo);
        store.attacker_guards = Some(attacker_guards);
        store.net_setup = Some(net);
        store.traffic_setup = Some(traffic);
        counters
    }

    /// The Sec. II trawling attack with live Sec. V traffic.
    fn sim_harvest(&self, store: &mut ArtifactStore) -> Counters {
        let mut net = store.net_setup().clone();
        let mut traffic = store.traffic_setup().clone();
        let hot0 = net.hot_counters();
        let harvester = Harvester::new(self.cfg.harvest.clone());
        let harvest = harvester.run(&mut net, |net| {
            traffic.tick_hour(net);
        });
        let mut counters = vec![
            ("descriptors", harvest.onion_count() as u64),
            ("requests_logged", harvest.requests.len() as u64),
            ("waves", u64::from(harvest.waves)),
            ("hours", harvest.hours),
        ];
        push_hot(&mut counters, net.hot_counters().since(hot0));
        store.harvest = Some(harvest);
        store.net_harvest = Some(net);
        store.traffic_harvest = Some(traffic);
        counters
    }

    /// The dedicated Sec. VI deanonymisation window: 48 h of signature
    /// logging against the Goldnet front end, branched off the
    /// post-harvest network so the Sec. V popularity logs stay
    /// unbiased and the port scan is unaffected.
    fn sim_deanon_window(&self, store: &mut ArtifactStore) -> Counters {
        let cfg = &self.cfg;
        let mut net = store.net_harvest().clone();
        let mut traffic = store.traffic_harvest().clone();
        let hot0 = net.hot_counters();
        // The paper attacked one of the Goldnet front ends; ask the
        // generated world which service that is instead of hard-coding
        // an address.
        let target: OnionAddress = store
            .world()
            .primary_goldnet_frontend()
            .expect("world plants Goldnet front ends at every scale")
            .onion;
        let mut attack = DeanonAttack::deploy_with_guards(
            &mut net,
            target,
            &cfg.deanon,
            store.attacker_guards().clone(),
        );
        for _ in 0..cfg.deanon_hours {
            attack.reposition(&mut net);
            net.advance_hours(1);
            traffic.tick_hour(&mut net);
        }
        let observations = net.take_guard_observations();
        let expected_rate = attack.expected_catch_rate(&net);
        let mut counters = vec![
            ("hours", cfg.deanon_hours),
            ("observations", observations.len() as u64),
        ];
        push_hot(&mut counters, net.hot_counters().since(hot0));
        store.deanon_window = Some(DeanonWindowOut {
            target,
            observations,
            expected_rate,
        });
        counters
    }

    /// The Sec. III multi-day port scan, branched off the post-harvest
    /// network.
    fn sim_port_scan(&self, store: &mut ArtifactStore) -> Counters {
        let mut net = store.net_harvest().clone();
        let hot0 = net.hot_counters();
        let scanner = Scanner::new(ScanConfig {
            days: self.cfg.scan_days,
            ..ScanConfig::default()
        });
        let scan = scanner.run(&mut net, store.world(), &store.harvest().onions);
        let mut counters = vec![
            ("targets", scan.targets as u64),
            ("probes_scheduled", scan.probes_scheduled),
            ("open_ports", u64::from(scan.total_open())),
        ];
        push_hot(&mut counters, net.hot_counters().since(hot0));
        store.scan = Some(scan);
        counters
    }
}

/// Executes one analysis stage against the (read-only) store.
fn run_analysis(
    stage: StageId,
    cfg: &StudyConfig,
    store: &ArtifactStore,
) -> (StageId, StageTiming, AnalysisOut) {
    let started = Instant::now();
    let (counters, out) = match stage {
        StageId::Geomap => analysis_geomap(store),
        StageId::Certs => analysis_certs(store),
        StageId::Crawl => analysis_crawl(store),
        StageId::Popularity => analysis_popularity(store),
        StageId::Tracking => analysis_tracking(cfg),
        _ => unreachable!("sim stage in analysis wave"),
    };
    let timing = StageTiming {
        stage,
        wall: started.elapsed(),
        counters,
    };
    (stage, timing, out)
}

/// Fig. 3: geographic mapping of the deanonymised clients.
fn analysis_geomap(store: &ArtifactStore) -> (Counters, AnalysisOut) {
    let window = store.deanon_window();
    let geomap = GeoMap::build(store.geo(), &window.observations);
    let report = DeanonReport {
        target: window.target,
        unique_clients: geomap.total_clients(),
        expected_rate: window.expected_rate,
        geomap,
    };
    let counters = vec![
        ("unique_clients", u64::from(report.unique_clients)),
        ("countries", report.geomap.country_count() as u64),
    ];
    (counters, AnalysisOut::Geomap(report))
}

/// Sec. III: the HTTPS certificate survey over everything the scan saw
/// answering on 443.
fn analysis_certs(store: &ArtifactStore) -> (Counters, AnalysisOut) {
    let https_onions: Vec<OnionAddress> = store
        .scan()
        .open_by_onion
        .iter()
        .filter(|(_, ports)| ports.contains(&443))
        .map(|(&onion, _)| onion)
        .collect();
    let certs = CertSurvey::run(store.world(), https_onions);
    let counters = vec![("https_destinations", u64::from(certs.https_destinations))];
    (counters, AnalysisOut::Certs(certs))
}

/// Sec. IV: crawl funnel, Table I, languages, Fig. 2.
fn analysis_crawl(store: &ArtifactStore) -> (Counters, AnalysisOut) {
    let destinations = store.scan().crawl_destinations();
    let crawl = Crawler::new().run(store.world(), &destinations);
    let counters = vec![
        ("destinations", destinations.len() as u64),
        ("pages_classified", crawl.classified.len() as u64),
    ];
    (counters, AnalysisOut::Crawl(Box::new(crawl)))
}

/// Sec. V: descriptor-ID resolution, Table II ranking, Goldnet
/// forensics, request share.
fn analysis_popularity(store: &ArtifactStore) -> (Counters, AnalysisOut) {
    let harvest = store.harvest();
    let world = store.world();
    let resolver = Resolver::build(
        &harvest.onions,
        SimTime::from_ymd(2013, 1, 28),
        SimTime::from_ymd(2013, 2, 8),
    );
    let resolution = resolver.resolve_log(&harvest.requests);
    let ranking = Ranking::build_normalized(&resolution, world, &harvest.slot_hours);
    let top_onions: Vec<OnionAddress> = ranking.top(40).iter().map(|r| r.onion).collect();
    let forensics = BotnetForensics::probe(world, top_onions);
    let requested_published_share = requested_published_share(&resolution, world);
    let counters = vec![
        ("requests_resolved", resolution.total_requests),
        ("ranked", ranking.rows().len() as u64),
    ];
    (
        counters,
        AnalysisOut::Popularity(Box::new(PopularityOut {
            resolution,
            ranking,
            forensics,
            requested_published_share,
        })),
    )
}

/// Sec. VII: consensus-archive tracking detection. Independent of the
/// simulated 2013 network — it generates its own 3-year archive.
fn analysis_tracking(cfg: &StudyConfig) -> (Counters, AnalysisOut) {
    let mut archive = ConsensusArchive::generate(&HistoryConfig {
        seed: stage_seed(cfg.seed, SeedDomain::Tracking),
        ..HistoryConfig::default()
    });
    scenario::inject_all(&mut archive, scenario::silkroad());
    let detector = TrackingDetector::new(DetectorConfig::default());
    let years = [
        ("year 1 (Feb–Dec 2011)", (2011, 2, 1), (2011, 12, 31)),
        ("year 2 (2012)", (2012, 1, 1), (2012, 12, 31)),
        ("year 3 (Jan–Oct 2013)", (2013, 1, 1), (2013, 10, 31)),
    ]
    .into_iter()
    .map(|(label, s, e)| {
        (
            label.to_owned(),
            detector.analyse(
                &archive,
                scenario::silkroad(),
                SimTime::from_ymd(s.0, s.1, s.2),
                SimTime::from_ymd(e.0, e.1, e.2),
            ),
        )
    })
    .collect();
    let counters = vec![("consensuses", archive.len() as u64), ("windows", 3)];
    (counters, AnalysisOut::Tracking(TrackingReport { years }))
}

//! The pipeline engine: plans a stage closure, executes sim stages in
//! canonical order, and fans the pure analysis stages out across
//! threads.
//!
//! Execution contract:
//!
//! * **Sim stages** run sequentially in [`StageId::ALL`] order. Each
//!   clones its input [`Network`] snapshot from the store, so sibling
//!   stages (`DeanonWindow`, `PortScan`) branch independent timelines
//!   off the post-harvest state — running or skipping one never
//!   perturbs the other.
//! * **Analysis stages** only read sim artifacts (the stage graph has
//!   no analysis→analysis edge), so all of them launch as one parallel
//!   wave under [`crossbeam::thread::scope`]. Results are joined and
//!   deposited in canonical order; with [`ExecMode::Sequential`] they
//!   run inline instead, which must — and is tested to — produce the
//!   identical [`ArtifactStore`].
//! * Randomness comes only from seeds derived in
//!   [`super::seeds::stage_seed`]; wall-clock time is never consulted
//!   except for instrumentation.
//! * **No stage failure aborts the run.** A stage body returns
//!   `Result` (and panics are caught), failures consume a bounded
//!   retry budget, and a stage that still fails is *degraded*: it is
//!   recorded in [`PipelineTimings::degraded`] together with every
//!   downstream stage that needed its artifact, and the run carries on
//!   with whatever remains. Sequential and parallel execution must —
//!   and are tested to — produce the identical degraded list.
//!
//! ## Observability
//!
//! Every stage body fills an [`obs::Registry`] (counters in the
//! historical `bench_stages.json` order, plus the newer dotted-name
//! gauges and histograms). With [`RunOptions::trace`] set, the engine
//! additionally collects a span trace: one lane per stage (plus lane 0
//! for the run), with per-stage spans, per-attempt spans, per-consensus
//! -round spans from [`Network::take_round_trace`], coarse client-op
//! spans (traffic ticks, scan days), and typed instant events (retry,
//! fault, degraded, cache). Sim-clock timestamps in the trace are a
//! pure function of the seed and the plan, so the `Sim` export is
//! byte-identical across same-seed runs; wall intervals ride along for
//! the `Wall` view only. Tracing is observational: it never changes an
//! artifact byte (the round recorder itself is proven inert in
//! `tor-sim`).

use std::collections::BTreeSet;
use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

use obs::{EventKind, Span, SpanRecorder, Trace, TraceEvent};
use onion_crypto::onion::OnionAddress;
use tor_sim::clock::{SimTime, HOUR};
use tor_sim::network::{Network, RoundTrace};
use wave::WaveStats;

use hs_content::{CertSurvey, CrawlConfig, Crawler};
use hs_deanon::{DeanonAttack, GeoMap};
use hs_harvest::Harvester;
use hs_popularity::{
    ranking::requested_published_share, BotnetForensics, Ranking, Resolver, StreamingPopularity,
    TrafficConfig, TrafficDriver,
};
use hs_portscan::{ScanConfig, Scanner};
use hs_tracking::{scenario, ConsensusArchive, DetectorConfig, HistoryConfig, TrackingDetector};
use hs_world::{GeoDb, World, WorldConfig};

use super::artifacts::{
    ArtifactStore, DeanonReport, DeanonWindowOut, PopularityOut, TrackingReport,
};
use super::cache::{derive_keys, CacheKey};
use super::control::{Halt, RunControl};
use super::seeds::{stage_seed, SeedDomain};
use super::stage::{StageId, StageKind};
use super::timing::{DegradedStage, PipelineTimings, StageTiming};
use crate::study::StudyConfig;

/// How the pipeline uses threads: whether the analysis stages fan out
/// across a thread pool, and how many workers the measurement waves
/// inside the sim stages (scan days, traffic ticks, crawl phases) get.
/// Wave output is byte-identical at any thread count (see the `wave`
/// crate), so `wave_threads` is pure wall-clock policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// One thread per analysis stage (the default).
    Parallel {
        /// Worker threads for in-stage measurement waves.
        wave_threads: usize,
    },
    /// Every stage inline on the calling thread — the reference order
    /// the parallel mode is tested against.
    Sequential {
        /// Worker threads for in-stage measurement waves.
        wave_threads: usize,
    },
}

impl ExecMode {
    /// Parallel analysis stages, single-threaded waves.
    pub fn parallel() -> Self {
        ExecMode::Parallel { wave_threads: 1 }
    }

    /// Inline analysis stages, single-threaded waves.
    pub fn sequential() -> Self {
        ExecMode::Sequential { wave_threads: 1 }
    }

    /// The same mode with `n` wave workers (zero behaves as one).
    pub fn with_wave_threads(self, n: usize) -> Self {
        let n = n.max(1);
        match self {
            ExecMode::Parallel { .. } => ExecMode::Parallel { wave_threads: n },
            ExecMode::Sequential { .. } => ExecMode::Sequential { wave_threads: n },
        }
    }

    /// The wave worker budget.
    pub fn wave_threads(self) -> usize {
        match self {
            ExecMode::Parallel { wave_threads } | ExecMode::Sequential { wave_threads } => {
                wave_threads
            }
        }
    }
}

impl Default for ExecMode {
    fn default() -> Self {
        ExecMode::parallel()
    }
}

/// Per-run observability switches.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOptions {
    /// Collect a span trace ([`PipelineRun::trace`] becomes `Some`).
    pub trace: bool,
    /// Human-readable event stream on stderr (off by default).
    pub log: obs::Logger,
}

/// The result of one pipeline run: the filled artifact slots plus the
/// per-stage instrumentation.
#[derive(Debug)]
pub struct PipelineRun {
    /// Artifacts produced by the executed stages.
    pub artifacts: ArtifactStore,
    /// What ran, how long it took, and what was skipped.
    pub timings: PipelineTimings,
    /// Why a controlled run stopped early, if it did. Always `None`
    /// for uncontrolled (batch) runs; the abandoned stages are in
    /// [`PipelineTimings::halted`].
    pub halt: Option<Halt>,
    /// The span trace, when [`RunOptions::trace`] was set.
    pub trace: Option<Trace>,
}

/// The engine. Owns nothing but the configuration; every run starts
/// from an empty store.
#[derive(Clone, Debug)]
pub struct Pipeline {
    cfg: StudyConfig,
}

/// Extracts a readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("stage panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("stage panicked: {s}")
    } else {
        "stage panicked with a non-string payload".to_owned()
    }
}

/// How many attempts a stage gets before it degrades. Analysis stages
/// are pure functions of the store, so a transient failure is worth
/// one retry; sim stages are deterministic in their inputs — an
/// identical rerun would fail identically — so they get one shot.
fn retry_budget(stage: StageId) -> u32 {
    match stage.kind() {
        StageKind::Sim => 1,
        StageKind::Analysis => 2,
    }
}

/// Sim-clock seconds to back off after `attempt` of `stage` failed:
/// exponential base (30 s doubled per failed attempt, capped) with a
/// deterministic ±50 % jitter drawn from the dedicated `Backoff` seed
/// domain. A pure function of `(seed, stage, attempt)`, so same-seed
/// runs record byte-identical backoff schedules regardless of wall
/// time, thread count, or which attempt actually recovered.
fn backoff_secs(seed: u64, stage: StageId, attempt: u32) -> u64 {
    let base = 30u64 << (attempt - 1).min(6);
    let roll = wave::mix2(
        stage_seed(seed, SeedDomain::Backoff),
        wave::mix2(stage as u64, u64::from(attempt)),
    );
    base / 2 + roll % base
}

/// The wall-clock pause that accompanies a sim-clock backoff. The sim
/// schedule is the deterministic record; the wall pause only yields
/// the CPU briefly so a transiently overloaded host can recover, and
/// is capped so retries never stall a test run.
fn backoff_pause(secs: u64) {
    std::thread::sleep(Duration::from_millis(secs.min(20)));
}

/// Chaos hook: the configured failure for `stage` at `attempt`, if
/// any. `fail_stages` fail every attempt (a permanently broken stage);
/// `flaky_stages` fail the first attempt only (a transient fault the
/// retry budget should absorb).
fn injected_failure(cfg: &StudyConfig, stage: StageId, attempt: u32) -> Option<String> {
    if cfg.fail_stages.contains(&stage) {
        return Some(format!("injected permanent failure in `{stage}`"));
    }
    if attempt == 1 && cfg.flaky_stages.contains(&stage) {
        return Some(format!("injected transient failure in `{stage}`"));
    }
    None
}

/// Records the traffic sampler's numeric-guard trips accumulated by a
/// stage (the delta over `before`) as counters. Both guards stay at
/// zero under any sane popularity model, and zero-valued trips are
/// *not* emitted — fault-free runs keep the historical counter layout.
fn record_poisson_trips(
    reg: &mut obs::Registry,
    after: hs_popularity::PoissonStats,
    before: hs_popularity::PoissonStats,
) {
    let valve = after.valve_trips - before.valve_trips;
    let clamp = after.clamp_trips - before.clamp_trips;
    if valve > 0 {
        reg.inc("poisson_valve_trips", valve);
    }
    if clamp > 0 {
        reg.inc("poisson_clamp_trips", clamp);
    }
}

/// A coarse client-operation interval recorded inside a sim stage
/// (a driven traffic tick, one scan day) — rendered as an `ops` span.
struct OpSpan {
    name: &'static str,
    start: u64,
    end: u64,
    args: Vec<(&'static str, u64)>,
}

/// What one sim-stage attempt collected: its metric registry plus —
/// when tracing — the sim interval it covered, the consensus rounds it
/// drove, and its client-op intervals.
struct StageObs {
    reg: obs::Registry,
    tracing: bool,
    sim: Option<(u64, u64)>,
    rounds: Vec<RoundTrace>,
    ops: Vec<OpSpan>,
    waves: Vec<WaveStats>,
}

impl StageObs {
    fn new(tracing: bool) -> Self {
        StageObs {
            reg: obs::Registry::new(),
            tracing,
            sim: None,
            rounds: Vec::new(),
            ops: Vec::new(),
            waves: Vec::new(),
        }
    }

    /// Records a batch of measurement-wave accounting: the wave worker
    /// budget as a gauge, every shard's item count into the imbalance
    /// histogram, and — when tracing — the raw stats for shard spans.
    /// Gauges and histograms never enter stage-span args or the
    /// committed baseline greps, so thread count stays invisible to
    /// the deterministic outputs.
    fn record_waves(&mut self, waves: Vec<WaveStats>) {
        if let Some(w) = waves.first() {
            self.reg.gauge("wave.threads", w.threads as f64);
        }
        for w in &waves {
            for s in &w.shards {
                self.reg.record("wave.shard_items", s.items as u64);
            }
        }
        self.waves.extend(waves);
    }

    /// Records the network's mutate-phase wave accounting (churn/fault
    /// rolls, authority voting, descriptor publish, store merges).
    /// Wall-only observability: gauges and histograms never enter the
    /// deterministic outputs, and — unlike measurement waves — mutate
    /// waves are deliberately kept out of `self.waves` so the trace's
    /// shard-span lanes stay reserved for the measurement side.
    fn record_mutate_waves(&mut self, waves: Vec<WaveStats>) {
        if let Some(w) = waves.first() {
            self.reg.gauge("mutate_wave.threads", w.threads as f64);
        }
        for w in &waves {
            for s in &w.shards {
                self.reg.record("mutate_wave.shard_items", s.items as u64);
            }
        }
    }

    /// Arms (or re-arms) the network round recorder for this stage and
    /// notes the stage's sim start. Re-arming resets the recorder's
    /// marks, so a stage never inherits deltas from the snapshot it
    /// cloned.
    fn begin(&mut self, net: &mut Network) {
        if self.tracing {
            net.set_round_tracing(true);
        }
        self.sim = Some((net.time().unix(), net.time().unix()));
    }

    /// Closes the stage's sim interval and drains its rounds.
    fn end(&mut self, net: &mut Network) {
        if let Some((start, _)) = self.sim {
            self.sim = Some((start, net.time().unix()));
        }
        if self.tracing {
            self.rounds = net.take_round_trace();
        }
    }
}

/// The value an analysis stage hands back to the joiner.
enum AnalysisOut {
    Geomap(DeanonReport),
    Certs(CertSurvey),
    Crawl(Box<hs_content::CrawlReport>),
    Popularity(Box<PopularityOut>),
    Tracking(TrackingReport),
}

/// Trace-side metadata for one completed analysis stage.
struct AnalysisMeta {
    /// Synthetic sim-span weight: the number of items the stage
    /// processed (analysis stages have no sim clock of their own).
    weight: u64,
    /// Wall interval in µs since the run epoch.
    wall: (u64, u64),
    /// Attempts consumed (for retry events).
    attempts: u32,
    /// Sim-clock backoff that followed each failed attempt.
    backoffs: Vec<u64>,
    /// Measurement-wave accounting (crawl only, for shard spans).
    waves: Vec<WaveStats>,
}

impl Pipeline {
    /// Creates an engine for `cfg`.
    pub fn new(cfg: StudyConfig) -> Self {
        Pipeline { cfg }
    }

    /// Runs the dependency closure of `targets` with default options
    /// (no trace, no log). See [`Pipeline::run_with`].
    pub fn run(&self, targets: &[StageId], mode: ExecMode) -> PipelineRun {
        self.run_with(targets, mode, RunOptions::default())
    }

    /// Runs the dependency closure of `targets`, skipping every stage
    /// the targets do not need. Stage failures degrade (recorded in
    /// [`PipelineTimings::degraded`]) instead of aborting the run.
    /// `opts` controls span tracing and the stderr event stream.
    pub fn run_with(&self, targets: &[StageId], mode: ExecMode, opts: RunOptions) -> PipelineRun {
        self.run_controlled(targets, mode, opts, &RunControl::default())
    }

    /// [`Pipeline::run_with`] under a query's [`RunControl`]: the
    /// cancellation token and deadline budgets are consulted at every
    /// stage-attempt boundary (before each stage, before each retry,
    /// before the analysis dispatch), and — when the control carries a
    /// cache — every stage first probes the content-addressed cache
    /// and deposits its output there on completion. Stages abandoned
    /// by an exhausted budget land in [`PipelineTimings::halted`] and
    /// the returned run's `halt` names the reason; everything that
    /// completed before the halt keeps its artifacts.
    pub fn run_controlled(
        &self,
        targets: &[StageId],
        mode: ExecMode,
        opts: RunOptions,
        ctl: &RunControl,
    ) -> PipelineRun {
        let epoch = Instant::now();
        let log = opts.log;
        let plan = StageId::closure(targets);
        // Cache keys are fixed for the whole run: stage identity, root
        // seed, the full config fingerprint, upstream keys, and the
        // caller's epoch salt (folded into `Setup`, chained onward).
        let keys: Option<[CacheKey; 9]> = ctl
            .cache
            .as_ref()
            .map(|_| derive_keys(self.cfg.seed, self.cfg.fingerprint(), ctl.epoch_salt));
        let mut sim_hours_used: u64 = 0;
        let mut halt: Option<Halt> = None;
        log.progress(format_args!(
            "pipeline: {} stage(s) planned ({mode:?})",
            plan.len()
        ));
        let mut store = ArtifactStore::default();
        let mut timings = PipelineTimings {
            executed: Vec::with_capacity(plan.len()),
            skipped: StageId::ALL
                .iter()
                .copied()
                .filter(|s| !plan.contains(s))
                .collect(),
            degraded: Vec::new(),
            halted: Vec::new(),
            elapsed: Default::default(),
        };
        let mut failed: BTreeSet<StageId> = BTreeSet::new();
        // Per-stage trace lanes, filled only when tracing.
        let mut recorders: Vec<(StageId, SpanRecorder)> = Vec::new();
        // The sim frontier: where the sim prefix's clock ended, which
        // is where analysis stages' synthetic spans start.
        let mut sim_lo = u64::MAX;
        let mut sim_hi = 0u64;

        // Sim prefix: strictly sequential, canonical order.
        for &stage in plan.iter().filter(|s| s.kind() == StageKind::Sim) {
            // Stage boundary: once any budget trips, the halt latches
            // and the rest of the plan is abandoned (never degraded —
            // the stages did not fail, the query ran out of budget).
            if halt.is_none() {
                halt = ctl.check(sim_hours_used);
                if let Some(h) = halt {
                    log.progress(format_args!("pipeline: halting before {stage} ({h})"));
                }
            }
            if halt.is_some() {
                timings.halted.push(stage);
                continue;
            }
            // Content-addressed cache probe: a hit installs the cached
            // payload exactly as if the stage had run, advancing zero
            // sim hours and consuming no randomness.
            if let (Some(cache), Some(keys)) = (ctl.cache.as_deref(), keys.as_ref()) {
                if let Some(payload) = cache.lookup(keys[stage as usize]) {
                    let started = Instant::now();
                    store.install(&payload);
                    let mut reg = obs::Registry::new();
                    reg.inc("stage_cache_hit", 1);
                    log.progress(format_args!("stage {stage}: served from cache"));
                    if opts.trace {
                        recorders.push((stage, cache_hit_recorder(sim_hi)));
                    }
                    timings.executed.push(StageTiming::from_registry(
                        stage,
                        started.elapsed(),
                        reg,
                    ));
                    continue;
                }
            }
            if let Some(&dep) = stage.deps().iter().find(|d| failed.contains(d)) {
                log.progress(format_args!(
                    "stage {stage}: skipped, dependency `{dep}` degraded"
                ));
                timings.degraded.push(DegradedStage {
                    stage,
                    error: format!("dependency `{dep}` degraded"),
                    attempts: 0,
                });
                failed.insert(stage);
                if opts.trace {
                    recorders.push((stage, degraded_recorder(sim_hi, 0)));
                }
                continue;
            }
            log.debug(format_args!("stage {stage}: starting"));
            let started = Instant::now();
            let wall_start = epoch.elapsed().as_micros() as u64;
            let budget = retry_budget(stage);
            let mut attempts = 0u32;
            let mut backoffs: Vec<u64> = Vec::new();
            let outcome = loop {
                attempts += 1;
                let mut sobs = StageObs::new(opts.trace);
                let wave_threads = mode.wave_threads();
                let result = match injected_failure(&self.cfg, stage, attempts) {
                    Some(err) => Err(err),
                    None => panic::catch_unwind(AssertUnwindSafe(|| match stage {
                        StageId::Setup => self.sim_setup(&mut store, &mut sobs, wave_threads),
                        StageId::Harvest => self.sim_harvest(&mut store, &mut sobs, wave_threads),
                        StageId::DeanonWindow => self.sim_deanon_window(&mut store, &mut sobs),
                        StageId::PortScan => {
                            self.sim_port_scan(&mut store, &mut sobs, wave_threads)
                        }
                        _ => unreachable!("analysis stage in sim prefix"),
                    }))
                    .unwrap_or_else(|payload| Err(panic_message(payload))),
                };
                match result {
                    Ok(()) => break Ok(sobs),
                    Err(err) if attempts < budget => {
                        // Retry boundary: an exhausted budget stops
                        // the retry here — the stage degrades with its
                        // error, and the next stage boundary halts the
                        // remainder of the plan.
                        if halt.is_none() {
                            halt = ctl.check(sim_hours_used);
                        }
                        if halt.is_some() {
                            break Err(err);
                        }
                        let wait = backoff_secs(self.cfg.seed, stage, attempts);
                        log.debug(format_args!(
                            "stage {stage}: attempt {attempts} failed ({err}); \
                             retrying after {wait} s sim-clock backoff"
                        ));
                        backoffs.push(wait);
                        backoff_pause(wait);
                        continue;
                    }
                    Err(err) => break Err(err),
                }
            };
            match outcome {
                Ok(mut sobs) => {
                    if attempts > 1 {
                        sobs.reg.inc("retries", u64::from(attempts - 1));
                        sobs.reg
                            .inc("stage_backoff_secs", backoffs.iter().sum::<u64>());
                    }
                    // Budget accounting: the simulated hours this
                    // stage actually advanced its timeline.
                    if let Some((s, e)) = sobs.sim {
                        sim_hours_used += e.saturating_sub(s) / HOUR;
                    }
                    let wall_end = epoch.elapsed().as_micros() as u64;
                    let timing = StageTiming::from_registry(stage, started.elapsed(), sobs.reg);
                    log.progress(format_args!(
                        "stage {stage}: done in {:.1} ms",
                        timing.wall.as_secs_f64() * 1e3
                    ));
                    if opts.trace {
                        let sim = sobs.sim.unwrap_or((sim_hi, sim_hi));
                        sim_lo = sim_lo.min(sim.0);
                        sim_hi = sim_hi.max(sim.1);
                        recorders.push((
                            stage,
                            sim_stage_recorder(
                                stage,
                                sim,
                                (wall_start, wall_end),
                                attempts,
                                &backoffs,
                                &timing,
                                &sobs.rounds,
                                &sobs.ops,
                                &sobs.waves,
                                epoch,
                            ),
                        ));
                    }
                    timings.executed.push(timing);
                    if let (Some(cache), Some(keys)) = (ctl.cache.as_deref(), keys.as_ref()) {
                        if let Some(payload) = store.extract(stage) {
                            cache.insert(keys[stage as usize], payload);
                        }
                    }
                }
                Err(error) => {
                    log.progress(format_args!(
                        "stage {stage}: DEGRADED after {attempts} attempt(s): {error}"
                    ));
                    timings.degraded.push(DegradedStage {
                        stage,
                        error,
                        attempts,
                    });
                    failed.insert(stage);
                    if opts.trace {
                        recorders.push((stage, degraded_recorder(sim_hi, attempts)));
                    }
                }
            }
        }
        // Where the sim clock ended: analysis stages' synthetic spans
        // start here (zero when the plan had no sim stage at all).
        let frontier = sim_hi;

        // Analysis wave: pure functions of the sim artifacts. Stages
        // whose dependency already degraded never launch; a halted
        // budget abandons the remainder before dispatch (the analysis
        // dispatch is itself a stage-attempt boundary).
        let mut runnable: Vec<StageId> = Vec::new();
        for &stage in plan.iter().filter(|s| s.kind() == StageKind::Analysis) {
            if halt.is_none() {
                halt = ctl.check(sim_hours_used);
                if let Some(h) = halt {
                    log.progress(format_args!("pipeline: halting before {stage} ({h})"));
                }
            }
            if halt.is_some() {
                timings.halted.push(stage);
                continue;
            }
            if let (Some(cache), Some(keys)) = (ctl.cache.as_deref(), keys.as_ref()) {
                if let Some(payload) = cache.lookup(keys[stage as usize]) {
                    let started = Instant::now();
                    store.install(&payload);
                    let mut reg = obs::Registry::new();
                    reg.inc("stage_cache_hit", 1);
                    log.progress(format_args!("stage {stage}: served from cache"));
                    if opts.trace {
                        recorders.push((stage, cache_hit_recorder(sim_hi)));
                    }
                    timings.executed.push(StageTiming::from_registry(
                        stage,
                        started.elapsed(),
                        reg,
                    ));
                    continue;
                }
            }
            if let Some(&dep) = stage.deps().iter().find(|d| failed.contains(d)) {
                log.progress(format_args!(
                    "stage {stage}: skipped, dependency `{dep}` degraded"
                ));
                timings.degraded.push(DegradedStage {
                    stage,
                    error: format!("dependency `{dep}` degraded"),
                    attempts: 0,
                });
                failed.insert(stage);
                if opts.trace {
                    recorders.push((stage, degraded_recorder(frontier, 0)));
                }
            } else {
                runnable.push(stage);
            }
        }
        if !runnable.is_empty() {
            log.progress(format_args!(
                "analysis wave: {} stage(s) ({mode:?})",
                runnable.len()
            ));
        }
        let wave_threads = mode.wave_threads();
        let mut results: Vec<AnalysisResult> = match mode {
            ExecMode::Sequential { .. } => runnable
                .iter()
                .map(|&stage| run_analysis(stage, &self.cfg, &store, epoch, log, wave_threads, ctl))
                .collect(),
            ExecMode::Parallel { .. } => {
                let cfg = &self.cfg;
                let shared = &store;
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<(StageId, _)> = runnable
                        .iter()
                        .map(|&stage| {
                            (
                                stage,
                                scope.spawn(move |_| {
                                    run_analysis(stage, cfg, shared, epoch, log, wave_threads, ctl)
                                }),
                            )
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|(stage, h)| {
                            h.join().unwrap_or_else(|payload| AnalysisResult {
                                stage,
                                outcome: Err((panic_message(payload), 1)),
                            })
                        })
                        .collect()
                })
                .expect("analysis scope panicked")
            }
        };
        // Join in canonical order regardless of completion order; this
        // is also what makes the degraded list identical between
        // sequential and parallel execution.
        results.sort_by_key(|r| r.stage);
        for r in results {
            match r.outcome {
                Ok((timing, out, meta)) => {
                    match out {
                        AnalysisOut::Geomap(v) => store.deanon = Some(v),
                        AnalysisOut::Certs(v) => store.certs = Some(v),
                        AnalysisOut::Crawl(v) => store.crawl = Some(*v),
                        AnalysisOut::Popularity(v) => store.popularity = Some(*v),
                        AnalysisOut::Tracking(v) => store.tracking = Some(v),
                    }
                    if let (Some(cache), Some(keys)) = (ctl.cache.as_deref(), keys.as_ref()) {
                        if let Some(payload) = store.extract(r.stage) {
                            cache.insert(keys[r.stage as usize], payload);
                        }
                    }
                    if opts.trace {
                        let sim = (frontier, frontier + meta.weight);
                        sim_lo = sim_lo.min(sim.0);
                        sim_hi = sim_hi.max(sim.1);
                        recorders.push((
                            r.stage,
                            analysis_stage_recorder(r.stage, sim, &timing, &meta, epoch),
                        ));
                    }
                    timings.executed.push(timing);
                }
                Err((error, attempts)) => {
                    log.progress(format_args!(
                        "stage {}: DEGRADED after {attempts} attempt(s): {error}",
                        r.stage
                    ));
                    if opts.trace {
                        recorders.push((r.stage, degraded_recorder(frontier, attempts)));
                    }
                    timings.degraded.push(DegradedStage {
                        stage: r.stage,
                        error,
                        attempts,
                    });
                }
            }
        }
        timings.degraded.sort_by_key(|d| d.stage);
        timings.halted.sort();
        timings.elapsed = epoch.elapsed();
        log.progress(format_args!(
            "pipeline: {} executed, {} degraded, {:.1} ms elapsed",
            timings.executed.len(),
            timings.degraded.len(),
            timings.elapsed.as_secs_f64() * 1e3
        ));

        let trace = opts.trace.then(|| {
            assemble_trace(
                recorders,
                if sim_lo == u64::MAX { 0 } else { sim_lo },
                sim_hi,
                timings.elapsed.as_micros() as u64,
                timings.executed.len() as u64,
                timings.degraded.len() as u64,
            )
        });

        PipelineRun {
            artifacts: store,
            timings,
            halt,
            trace,
        }
    }

    /// Whether this run injects protocol-level faults (and therefore
    /// reports fault counters).
    fn faults_active(&self) -> bool {
        !self.cfg.faults.is_inert()
    }

    /// World generation, network build, guard prepositioning, traffic
    /// driver construction.
    fn sim_setup(
        &self,
        store: &mut ArtifactStore,
        sobs: &mut StageObs,
        wave_threads: usize,
    ) -> Result<(), String> {
        let cfg = &self.cfg;
        let world = World::generate(
            WorldConfig::default()
                .with_seed(stage_seed(cfg.seed, SeedDomain::World))
                .with_scale(cfg.scale),
        );
        let geo = GeoDb::new();
        // The fault plan always flows into the builder: an inert plan
        // is the identity (proved by test), and an active one draws
        // its decisions from the dedicated `Faults` seed domain.
        let mut fault_plan = cfg.faults.clone();
        fault_plan.seed = stage_seed(cfg.seed, SeedDomain::Faults);
        let mut net = tor_sim::network::NetworkBuilder::new()
            .relays(cfg.relays)
            .seed(stage_seed(cfg.seed, SeedDomain::Network))
            .start(SimTime::from_ymd(2013, 2, 1))
            .faults(fault_plan)
            .build();
        // Mutate-phase waves (churn, voting, publish, store merges)
        // share the measurement-wave worker budget. Snapshots cloned
        // off this network inherit the setting.
        net.set_mutate_threads(wave_threads);
        sobs.begin(&mut net);
        world.register_all(&mut net);
        // The attacker's guard relays run long before the measurement:
        // victims' guard sets must have had the chance to include them.
        let attacker_guards = DeanonAttack::preposition_guards(&mut net, &cfg.deanon);
        net.advance_hours(1);
        let traffic = TrafficDriver::new(
            &mut net,
            &world,
            &geo,
            TrafficConfig {
                clients: cfg.traffic_clients,
                seed: stage_seed(cfg.seed, SeedDomain::Traffic),
                threads: wave_threads,
            },
        );
        sobs.reg.inc("relays", cfg.relays as u64);
        sobs.reg.inc("services", world.services().len() as u64);
        sobs.reg
            .inc("traffic_clients", traffic.clients().len() as u64);
        net.hot_counters().record_into(&mut sobs.reg);
        if self.faults_active() {
            net.fault_counters().record_into(&mut sobs.reg);
        }
        sobs.record_mutate_waves(net.take_mutate_wave_stats());
        sobs.end(&mut net);
        store.world = Some(world);
        store.geo = Some(geo);
        store.attacker_guards = Some(attacker_guards);
        store.net_setup = Some(net);
        store.traffic_setup = Some(traffic);
        Ok(())
    }

    /// The Sec. II trawling attack with live Sec. V traffic. With
    /// [`StudyConfig::streaming`] set, the harvester drains its request
    /// log hourly into the sketch aggregator instead of materializing
    /// the per-request event vector.
    fn sim_harvest(
        &self,
        store: &mut ArtifactStore,
        sobs: &mut StageObs,
        wave_threads: usize,
    ) -> Result<(), String> {
        let mut net = store.try_net_setup()?.clone();
        let mut traffic = store.try_traffic_setup()?.clone();
        sobs.begin(&mut net);
        let hot0 = net.hot_counters();
        let faults0 = net.fault_counters();
        let trips0 = traffic.poisson_stats();
        let harvester = Harvester::new(self.cfg.harvest.clone());
        let mut streaming = self.cfg.streaming.map(|scfg| {
            StreamingPopularity::new(
                scfg,
                stage_seed(self.cfg.seed, SeedDomain::Sketch),
                wave_threads,
            )
        });
        let tracing = sobs.tracing;
        let mut tick_ops: Vec<OpSpan> = Vec::new();
        let drive = |net: &mut Network| {
            if tracing {
                let at = net.time().unix();
                let before = net.hot_counters();
                traffic.tick_hour(net);
                let work = net.hot_counters().since(before);
                tick_ops.push(OpSpan {
                    name: "traffic_tick",
                    start: at.saturating_sub(HOUR),
                    end: at,
                    args: vec![("fetches", work.fetches)],
                });
            } else {
                traffic.tick_hour(net);
            }
        };
        let harvest = match streaming.as_mut() {
            Some(agg) => {
                harvester.run_streamed(&mut net, drive, &mut |batches| agg.absorb(batches))
            }
            None => harvester.run(&mut net, drive),
        }
        .map_err(|e| e.to_string())?;
        sobs.ops = tick_ops;
        sobs.record_waves(traffic.take_wave_stats());
        if let Some(agg) = streaming.as_mut() {
            sobs.record_waves(agg.take_wave_stats());
        }
        record_poisson_trips(&mut sobs.reg, traffic.poisson_stats(), trips0);
        sobs.reg.inc("descriptors", harvest.onion_count() as u64);
        // On the streaming path the request vector is intentionally
        // empty; the absorbed total is the equivalent figure.
        let requests_logged = streaming
            .as_ref()
            .map_or(harvest.requests.len() as u64, |agg| {
                agg.summary().total_requests
            });
        sobs.reg.inc("requests_logged", requests_logged);
        sobs.reg.inc("waves", u64::from(harvest.waves));
        sobs.reg.inc("hours", harvest.hours);
        net.hot_counters().since(hot0).record_into(&mut sobs.reg);
        if self.faults_active() {
            net.fault_counters()
                .since(faults0)
                .record_into(&mut sobs.reg);
            sobs.reg.inc("fleet_restarts", harvest.fleet_restarts);
        }
        let publishing = store
            .try_world()?
            .services()
            .iter()
            .filter(|s| s.publishes_descriptors())
            .count();
        sobs.reg
            .gauge("harvest.coverage", harvest.coverage_of(publishing));
        sobs.reg.merge_hist(
            "harvest.descriptors_per_relay",
            &harvest.descriptors_per_relay,
        );
        // Sketch metrics exist only on the streaming path, so the
        // committed streaming-off baselines stay byte-stable.
        if let Some(agg) = &streaming {
            let s = agg.summary();
            sobs.reg.inc("sketch_batches", s.batches);
            sobs.reg.gauge("sketch.memory_bytes", s.memory_bytes as f64);
        }
        sobs.record_mutate_waves(net.take_mutate_wave_stats());
        sobs.end(&mut net);
        store.harvest = Some(harvest);
        store.net_harvest = Some(net);
        store.traffic_harvest = Some(traffic);
        store.streaming = streaming;
        Ok(())
    }

    /// The dedicated Sec. VI deanonymisation window: 48 h of signature
    /// logging against the Goldnet front end, branched off the
    /// post-harvest network so the Sec. V popularity logs stay
    /// unbiased and the port scan is unaffected.
    fn sim_deanon_window(
        &self,
        store: &mut ArtifactStore,
        sobs: &mut StageObs,
    ) -> Result<(), String> {
        let cfg = &self.cfg;
        let mut net = store.try_net_harvest()?.clone();
        let mut traffic = store.try_traffic_harvest()?.clone();
        sobs.begin(&mut net);
        let hot0 = net.hot_counters();
        let faults0 = net.fault_counters();
        let trips0 = traffic.poisson_stats();
        // The paper attacked one of the Goldnet front ends; ask the
        // generated world which service that is instead of hard-coding
        // an address.
        let target: OnionAddress = store
            .try_world()?
            .primary_goldnet_frontend()
            .ok_or_else(|| "world generated no Goldnet front end to attack".to_owned())?
            .onion;
        let mut attack = DeanonAttack::deploy_with_guards(
            &mut net,
            target,
            &cfg.deanon,
            store.try_attacker_guards()?.clone(),
        );
        for _ in 0..cfg.deanon_hours {
            attack.reposition(&mut net);
            net.advance_hours(1);
            if sobs.tracing {
                let at = net.time().unix();
                let before = net.hot_counters();
                traffic.tick_hour(&mut net);
                let work = net.hot_counters().since(before);
                sobs.ops.push(OpSpan {
                    name: "traffic_tick",
                    start: at.saturating_sub(HOUR),
                    end: at,
                    args: vec![("fetches", work.fetches)],
                });
            } else {
                traffic.tick_hour(&mut net);
            }
        }
        let observations = net.take_guard_observations();
        let expected_rate = attack.expected_catch_rate(&net);
        sobs.record_waves(traffic.take_wave_stats());
        record_poisson_trips(&mut sobs.reg, traffic.poisson_stats(), trips0);
        sobs.reg.inc("hours", cfg.deanon_hours);
        sobs.reg.inc("observations", observations.len() as u64);
        net.hot_counters().since(hot0).record_into(&mut sobs.reg);
        if self.faults_active() {
            net.fault_counters()
                .since(faults0)
                .record_into(&mut sobs.reg);
        }
        sobs.record_mutate_waves(net.take_mutate_wave_stats());
        sobs.end(&mut net);
        store.deanon_window = Some(DeanonWindowOut {
            target,
            observations,
            expected_rate,
        });
        Ok(())
    }

    /// The Sec. III multi-day port scan, branched off the post-harvest
    /// network.
    fn sim_port_scan(
        &self,
        store: &mut ArtifactStore,
        sobs: &mut StageObs,
        wave_threads: usize,
    ) -> Result<(), String> {
        let mut net = store.try_net_harvest()?.clone();
        sobs.begin(&mut net);
        let hot0 = net.hot_counters();
        let faults0 = net.fault_counters();
        let scanner = Scanner::new(ScanConfig {
            days: self.cfg.scan_days,
            seed: stage_seed(self.cfg.seed, SeedDomain::Scan),
            threads: wave_threads,
            ..ScanConfig::default()
        });
        let (scan, waves) =
            scanner.run_traced(&mut net, store.try_world()?, &store.try_harvest()?.onions);
        sobs.record_waves(waves);
        sobs.reg.inc("targets", scan.targets as u64);
        sobs.reg.inc("probes_scheduled", scan.probes_scheduled);
        sobs.reg.inc("open_ports", u64::from(scan.total_open()));
        net.hot_counters().since(hot0).record_into(&mut sobs.reg);
        if self.faults_active() {
            net.fault_counters()
                .since(faults0)
                .record_into(&mut sobs.reg);
            sobs.reg.inc("fetch_retries", scan.fetch_retries);
            sobs.reg.inc("fetch_recovered", scan.fetch_recovered);
            sobs.reg.inc("fetch_gave_ups", scan.fetch_gave_ups);
            sobs.reg.inc("fetch_gone", scan.fetch_gone);
            sobs.reg.inc("retry_backoff_secs", scan.retry_backoff_secs);
        }
        if scan.probes_scheduled > 0 {
            sobs.reg.gauge(
                "scan.coverage",
                scan.probes_concluded as f64 / scan.probes_scheduled as f64,
            );
        }
        sobs.reg
            .merge_hist("scan.fetch_attempts", &scan.fetch_attempts);
        sobs.reg
            .merge_hist("scan.retry_backoff", &scan.retry_backoff);
        if sobs.tracing {
            for day in &scan.days_trace {
                sobs.ops.push(OpSpan {
                    name: "scan_day",
                    start: day.day.unix(),
                    end: day.day.unix() + 24 * HOUR,
                    args: vec![
                        ("scheduled", day.scheduled),
                        ("concluded", day.concluded),
                        ("gave_ups", day.gave_ups),
                    ],
                });
            }
        }
        sobs.record_mutate_waves(net.take_mutate_wave_stats());
        sobs.end(&mut net);
        store.scan = Some(scan);
        Ok(())
    }
}

/// Builds the trace lane for a completed sim stage: the stage span,
/// one span per attempt, per-round sim spans, client-op spans, and the
/// typed instant events (retry per failed attempt, fault per faulty
/// round, one cache summary).
#[allow(clippy::too_many_arguments)]
fn sim_stage_recorder(
    stage: StageId,
    sim: (u64, u64),
    wall: (u64, u64),
    attempts: u32,
    backoffs: &[u64],
    timing: &StageTiming,
    rounds: &[RoundTrace],
    ops: &[OpSpan],
    waves: &[WaveStats],
    epoch: Instant,
) -> SpanRecorder {
    let mut rec = SpanRecorder::new();
    rec.span(Span {
        name: format!("stage:{stage}"),
        cat: "stage",
        sim_start: sim.0,
        sim_end: sim.1,
        wall_us: Some(wall),
        args: timing.counters.clone(),
    });
    push_attempts(&mut rec, sim, Some(wall), attempts, backoffs);
    for r in rounds {
        rec.span(Span {
            name: "round".to_owned(),
            cat: "sim",
            sim_start: r.start.unix(),
            sim_end: r.end.unix(),
            wall_us: None,
            args: vec![
                ("sha1_digests", r.hot.sha1_digests),
                ("cache_hits", r.hot.desc_cache_hits),
                ("cache_misses", r.hot.desc_cache_misses),
                ("fetches", r.hot.fetches),
            ],
        });
        if r.faults.total() > 0 {
            rec.event(TraceEvent {
                kind: EventKind::Fault,
                sim_at: r.end.unix(),
                wall_us: None,
                args: vec![("faults", r.faults.total())],
            });
        }
    }
    for op in ops {
        rec.span(Span {
            name: op.name.to_owned(),
            cat: "ops",
            sim_start: op.start,
            sim_end: op.end,
            wall_us: None,
            args: op.args.clone(),
        });
    }
    push_shard_spans(&mut rec, sim.1, waves, epoch);
    // One cache summary per stage, from the historical counters.
    let hits = timing.counter("desc_cache_hits").unwrap_or(0);
    let misses = timing.counter("desc_cache_misses").unwrap_or(0);
    if hits + misses > 0 {
        rec.event(TraceEvent {
            kind: EventKind::Cache,
            sim_at: sim.1,
            wall_us: Some(wall.1),
            args: vec![("hits", hits), ("misses", misses)],
        });
    }
    rec
}

/// Builds the trace lane for a completed analysis stage. Analysis
/// stages have no sim clock; their synthetic sim span starts at the
/// sim frontier with a duration equal to the items processed, so the
/// deterministic view still shows relative workloads.
fn analysis_stage_recorder(
    stage: StageId,
    sim: (u64, u64),
    timing: &StageTiming,
    meta: &AnalysisMeta,
    epoch: Instant,
) -> SpanRecorder {
    let mut rec = SpanRecorder::new();
    rec.span(Span {
        name: format!("stage:{stage}"),
        cat: "stage",
        sim_start: sim.0,
        sim_end: sim.1,
        wall_us: Some(meta.wall),
        args: timing.counters.clone(),
    });
    push_attempts(
        &mut rec,
        sim,
        Some(meta.wall),
        meta.attempts,
        &meta.backoffs,
    );
    push_shard_spans(&mut rec, sim.1, &meta.waves, epoch);
    rec
}

/// Appends one span per attempt plus a retry event per failed attempt
/// (carrying the sim-clock backoff that followed it). Failed attempts
/// render as zero-width spans at the stage's sim start (their work was
/// discarded); the final attempt spans the full stage.
fn push_attempts(
    rec: &mut SpanRecorder,
    sim: (u64, u64),
    wall: Option<(u64, u64)>,
    attempts: u32,
    backoffs: &[u64],
) {
    for a in 1..attempts {
        rec.span(Span {
            name: format!("attempt {a}"),
            cat: "attempt",
            sim_start: sim.0,
            sim_end: sim.0,
            wall_us: None,
            args: Vec::new(),
        });
        let mut args = vec![("failed_attempt", u64::from(a))];
        if let Some(&wait) = backoffs.get(a as usize - 1) {
            args.push(("backoff_secs", wait));
        }
        rec.event(TraceEvent {
            kind: EventKind::Retry,
            sim_at: sim.0,
            wall_us: None,
            args,
        });
    }
    rec.span(Span {
        name: format!("attempt {attempts}"),
        cat: "attempt",
        sim_start: sim.0,
        sim_end: sim.1,
        wall_us: wall,
        args: Vec::new(),
    });
}

/// Appends one wall-clock span per measurement-wave shard. Shard spans
/// are pinned at the stage's sim end with zero sim duration — the wave
/// is instantaneous on the sim clock — and the Sim-clock export drops
/// the `shard` category entirely, since shard count varies with the
/// thread budget while the deterministic view must not.
fn push_shard_spans(rec: &mut SpanRecorder, sim_end: u64, waves: &[WaveStats], epoch: Instant) {
    for w in waves {
        for s in &w.shards {
            let start_us = s.start.saturating_duration_since(epoch).as_micros() as u64;
            let end_us = s.end.saturating_duration_since(epoch).as_micros() as u64;
            rec.span(Span {
                name: format!("shard {}", s.shard),
                cat: "shard",
                sim_start: sim_end,
                sim_end,
                wall_us: Some((start_us, end_us)),
                args: vec![("items", s.items as u64), ("threads", w.threads as u64)],
            });
        }
    }
}

/// The trace lane for a stage served from the content-addressed cache:
/// a single cache event, since the stage body never ran.
fn cache_hit_recorder(sim_at: u64) -> SpanRecorder {
    let mut rec = SpanRecorder::new();
    rec.event(TraceEvent {
        kind: EventKind::Cache,
        sim_at,
        wall_us: None,
        args: vec![("stage_cache_hit", 1)],
    });
    rec
}

/// The trace lane for a stage that degraded (or never ran because a
/// dependency degraded, in which case `attempts` is zero).
fn degraded_recorder(sim_at: u64, attempts: u32) -> SpanRecorder {
    let mut rec = SpanRecorder::new();
    rec.event(TraceEvent {
        kind: EventKind::Degraded,
        sim_at,
        wall_us: None,
        args: vec![("attempts", u64::from(attempts))],
    });
    rec
}

/// Merges per-stage recorders into the final [`Trace`]: lane 0 is the
/// run itself, then one lane per stage in canonical [`StageId::ALL`]
/// order (tid = index + 1), which keeps the export deterministic no
/// matter how the parallel wave interleaved.
fn assemble_trace(
    mut recorders: Vec<(StageId, SpanRecorder)>,
    sim_lo: u64,
    sim_hi: u64,
    elapsed_us: u64,
    executed: u64,
    degraded: u64,
) -> Trace {
    let mut trace = Trace::new();
    let mut pipeline_rec = SpanRecorder::new();
    pipeline_rec.span(Span {
        name: "pipeline".to_owned(),
        cat: "pipeline",
        sim_start: sim_lo,
        sim_end: sim_hi.max(sim_lo),
        wall_us: Some((0, elapsed_us)),
        args: vec![("executed", executed), ("degraded", degraded)],
    });
    trace.push_lane(0, "pipeline", pipeline_rec);
    for (idx, &stage) in StageId::ALL.iter().enumerate() {
        if let Some(pos) = recorders.iter().position(|(s, _)| *s == stage) {
            let (_, rec) = recorders.remove(pos);
            trace.push_lane(idx as u32 + 1, &format!("stage {stage}"), rec);
        }
    }
    trace
}

/// One analysis stage's outcome: an instrumented artifact (plus trace
/// metadata), or the error (with attempt count) that degraded it.
struct AnalysisResult {
    stage: StageId,
    outcome: Result<(StageTiming, AnalysisOut, AnalysisMeta), (String, u32)>,
}

/// Executes one analysis stage against the (read-only) store, with
/// panic containment, chaos injection, and the stage retry budget.
/// The query's [`RunControl`] is consulted at each retry boundary: an
/// exhausted budget stops the retry and degrades the stage with its
/// last error.
#[allow(clippy::too_many_arguments)]
fn run_analysis(
    stage: StageId,
    cfg: &StudyConfig,
    store: &ArtifactStore,
    epoch: Instant,
    log: obs::Logger,
    wave_threads: usize,
    ctl: &RunControl,
) -> AnalysisResult {
    let started = Instant::now();
    let wall_start = epoch.elapsed().as_micros() as u64;
    let budget = retry_budget(stage);
    let mut attempts = 0u32;
    let mut backoffs: Vec<u64> = Vec::new();
    loop {
        attempts += 1;
        let result = match injected_failure(cfg, stage, attempts) {
            Some(err) => Err(err),
            None => panic::catch_unwind(AssertUnwindSafe(|| {
                analysis_body(stage, cfg, store, wave_threads)
            }))
            .unwrap_or_else(|payload| Err(panic_message(payload))),
        };
        match result {
            Ok((mut reg, out, weight, waves)) => {
                if attempts > 1 {
                    reg.inc("retries", u64::from(attempts - 1));
                    reg.inc("stage_backoff_secs", backoffs.iter().sum::<u64>());
                }
                if let Some(w) = waves.first() {
                    reg.gauge("wave.threads", w.threads as f64);
                }
                for w in &waves {
                    for s in &w.shards {
                        reg.record("wave.shard_items", s.items as u64);
                    }
                }
                let timing = StageTiming::from_registry(stage, started.elapsed(), reg);
                log.progress(format_args!(
                    "stage {stage}: done in {:.1} ms",
                    timing.wall.as_secs_f64() * 1e3
                ));
                let meta = AnalysisMeta {
                    weight,
                    wall: (wall_start, epoch.elapsed().as_micros() as u64),
                    attempts,
                    backoffs,
                    waves,
                };
                return AnalysisResult {
                    stage,
                    outcome: Ok((timing, out, meta)),
                };
            }
            Err(err) if attempts < budget => {
                // Retry boundary: give up on an exhausted budget
                // (analysis stages advance zero sim hours, so only
                // cancellation and the wall deadline can trip here).
                if ctl.check(0).is_some() {
                    return AnalysisResult {
                        stage,
                        outcome: Err((err, attempts)),
                    };
                }
                let wait = backoff_secs(cfg.seed, stage, attempts);
                log.debug(format_args!(
                    "stage {stage}: attempt {attempts} failed ({err}); \
                     retrying after {wait} s sim-clock backoff"
                ));
                backoffs.push(wait);
                backoff_pause(wait);
                continue;
            }
            Err(err) => {
                return AnalysisResult {
                    stage,
                    outcome: Err((err, attempts)),
                }
            }
        }
    }
}

/// The un-instrumented analysis stage body. Returns the stage's metric
/// registry, its artifact, and the item count its synthetic trace span
/// uses as duration.
fn analysis_body(
    stage: StageId,
    cfg: &StudyConfig,
    store: &ArtifactStore,
    wave_threads: usize,
) -> Result<AnalysisBodyOut, String> {
    match stage {
        StageId::Geomap => analysis_geomap(store),
        StageId::Certs => analysis_certs(store),
        StageId::Crawl => analysis_crawl(cfg, store, wave_threads),
        StageId::Popularity => analysis_popularity(cfg, store),
        StageId::Tracking => analysis_tracking(cfg),
        _ => unreachable!("sim stage in analysis wave"),
    }
}

/// What an analysis stage body yields: its metric registry, artifact,
/// synthetic-span weight, and any measurement-wave shard stats.
type AnalysisBodyOut = (obs::Registry, AnalysisOut, u64, Vec<WaveStats>);

/// Fig. 3: geographic mapping of the deanonymised clients.
fn analysis_geomap(store: &ArtifactStore) -> Result<AnalysisBodyOut, String> {
    let window = store.try_deanon_window()?;
    let geomap = GeoMap::build(store.try_geo()?, &window.observations);
    let report = DeanonReport {
        target: window.target,
        unique_clients: geomap.total_clients(),
        expected_rate: window.expected_rate,
        geomap,
    };
    let weight = window.observations.len() as u64;
    let mut reg = obs::Registry::new();
    reg.inc("unique_clients", u64::from(report.unique_clients));
    reg.inc("countries", report.geomap.country_count() as u64);
    Ok((reg, AnalysisOut::Geomap(report), weight, Vec::new()))
}

/// Sec. III: the HTTPS certificate survey over everything the scan saw
/// answering on 443.
fn analysis_certs(store: &ArtifactStore) -> Result<AnalysisBodyOut, String> {
    let https_onions: Vec<OnionAddress> = store
        .try_scan()?
        .open_by_onion
        .iter()
        .filter(|(_, ports)| ports.contains(&443))
        .map(|(&onion, _)| onion)
        .collect();
    let certs = CertSurvey::run(store.try_world()?, https_onions);
    let mut reg = obs::Registry::new();
    reg.inc("https_destinations", certs.https_destinations);
    let weight = certs.https_destinations;
    Ok((reg, AnalysisOut::Certs(certs), weight, Vec::new()))
}

/// Sec. IV: crawl funnel, Table I, languages, Fig. 2.
fn analysis_crawl(
    cfg: &StudyConfig,
    store: &ArtifactStore,
    wave_threads: usize,
) -> Result<AnalysisBodyOut, String> {
    let destinations = store.try_scan()?.crawl_destinations();
    // A zero transient rate makes `with_config` the identity of
    // `Crawler::new()` (proved by test), so fault-free crawls are
    // untouched.
    let crawler = Crawler::with_config(CrawlConfig {
        transient_failure_rate: cfg.faults.crawl_transient_rate,
        seed: stage_seed(cfg.seed, SeedDomain::Faults),
        retry_attempts: 3,
        threads: wave_threads,
    });
    let (crawl, waves) = crawler.run_traced(store.try_world()?, &destinations);
    let mut reg = obs::Registry::new();
    reg.inc("destinations", destinations.len() as u64);
    reg.inc("pages_classified", crawl.classified.len() as u64);
    if cfg.faults.crawl_transient_rate > 0.0 {
        reg.inc("transient_failures", crawl.transient_failures);
        reg.inc("connect_retries", crawl.retries);
        reg.inc("gave_ups", crawl.gave_ups);
    }
    reg.merge_hist("crawl.connect_attempts", &crawl.connect_attempts);
    reg.merge_hist("crawl.words_per_page", &crawl.words_per_page);
    let weight = destinations.len() as u64;
    Ok((reg, AnalysisOut::Crawl(Box::new(crawl)), weight, waves))
}

/// Sec. V: descriptor-ID resolution, Table II ranking, Goldnet
/// forensics, request share. On the streaming path the resolution is
/// reconstituted from the harvest's sketch aggregator instead of the
/// materialized request log; the ranking code downstream is shared.
fn analysis_popularity(
    cfg: &StudyConfig,
    store: &ArtifactStore,
) -> Result<AnalysisBodyOut, String> {
    let harvest = store.try_harvest()?;
    let world = store.try_world()?;
    let resolver = Resolver::build(
        &harvest.onions,
        SimTime::from_ymd(2013, 1, 28),
        SimTime::from_ymd(2013, 2, 8),
    );
    let (resolution, sketch) = match &store.streaming {
        Some(agg) => (agg.finalize(&resolver), Some(agg.summary())),
        None => (resolver.resolve_log(&harvest.requests), None),
    };
    let ranking = Ranking::build_normalized(&resolution, world, &harvest.slot_hours);
    let top_onions: Vec<OnionAddress> = ranking.top(40).iter().map(|r| r.onion).collect();
    let forensics = BotnetForensics::probe(world, top_onions);
    let requested_published_share = requested_published_share(&resolution, world);
    let mut reg = obs::Registry::new();
    reg.inc("requests_resolved", resolution.total_requests);
    reg.inc("ranked", ranking.rows().len() as u64);
    if !cfg.faults.is_inert() {
        reg.inc("unnormalized", ranking.unnormalized() as u64);
    }
    // Sketch metrics exist only on the streaming path so that the
    // committed exact-path baselines stay byte-stable.
    if let Some(s) = &sketch {
        reg.inc("sketch_topk_tracked", s.topk_tracked as u64);
        reg.inc("sketch_topk_churn", s.topk_churn);
        reg.gauge("sketch.cms_width", s.cms_width as f64);
        reg.gauge("sketch.cms_depth", s.cms_depth as f64);
        reg.gauge("sketch.topk_capacity", s.topk_capacity as f64);
        reg.gauge("sketch.memory_bytes", s.memory_bytes as f64);
        reg.gauge("sketch.hll_estimate", s.hll_estimate);
    }
    reg.gauge("popularity.phantom_share", resolution.phantom_share());
    reg.merge_hist(
        "popularity.requests_per_onion",
        &resolution.requests_histogram(),
    );
    let weight = resolution.total_requests;
    Ok((
        reg,
        AnalysisOut::Popularity(Box::new(PopularityOut {
            resolution,
            ranking,
            forensics,
            requested_published_share,
            sketch,
        })),
        weight,
        Vec::new(),
    ))
}

/// Sec. VII: consensus-archive tracking detection. Independent of the
/// simulated 2013 network — it generates its own 3-year archive.
fn analysis_tracking(cfg: &StudyConfig) -> Result<AnalysisBodyOut, String> {
    let mut archive = ConsensusArchive::generate(&HistoryConfig {
        seed: stage_seed(cfg.seed, SeedDomain::Tracking),
        ..HistoryConfig::default()
    });
    scenario::inject_all(&mut archive, scenario::silkroad());
    let detector = TrackingDetector::new(DetectorConfig::default());
    let years = [
        ("year 1 (Feb–Dec 2011)", (2011, 2, 1), (2011, 12, 31)),
        ("year 2 (2012)", (2012, 1, 1), (2012, 12, 31)),
        ("year 3 (Jan–Oct 2013)", (2013, 1, 1), (2013, 10, 31)),
    ]
    .into_iter()
    .map(|(label, s, e)| {
        (
            label.to_owned(),
            detector.analyse(
                &archive,
                scenario::silkroad(),
                SimTime::from_ymd(s.0, s.1, s.2),
                SimTime::from_ymd(e.0, e.1, e.2),
            ),
        )
    })
    .collect();
    let weight = archive.len() as u64;
    let mut reg = obs::Registry::new();
    reg.inc("consensuses", archive.len() as u64);
    reg.inc("windows", 3);
    Ok((
        reg,
        AnalysisOut::Tracking(TrackingReport { years }),
        weight,
        Vec::new(),
    ))
}

//! The pipeline engine: plans a stage closure, executes sim stages in
//! canonical order, and fans the pure analysis stages out across
//! threads.
//!
//! Execution contract:
//!
//! * **Sim stages** run sequentially in [`StageId::ALL`] order. Each
//!   clones its input [`Network`] snapshot from the store, so sibling
//!   stages (`DeanonWindow`, `PortScan`) branch independent timelines
//!   off the post-harvest state — running or skipping one never
//!   perturbs the other.
//! * **Analysis stages** only read sim artifacts (the stage graph has
//!   no analysis→analysis edge), so all of them launch as one parallel
//!   wave under [`crossbeam::thread::scope`]. Results are joined and
//!   deposited in canonical order; with [`ExecMode::Sequential`] they
//!   run inline instead, which must — and is tested to — produce the
//!   identical [`ArtifactStore`].
//! * Randomness comes only from seeds derived in
//!   [`super::seeds::stage_seed`]; wall-clock time is never consulted
//!   except for instrumentation.
//! * **No stage failure aborts the run.** A stage body returns
//!   `Result` (and panics are caught), failures consume a bounded
//!   retry budget, and a stage that still fails is *degraded*: it is
//!   recorded in [`PipelineTimings::degraded`] together with every
//!   downstream stage that needed its artifact, and the run carries on
//!   with whatever remains. Sequential and parallel execution must —
//!   and are tested to — produce the identical degraded list.

use std::collections::BTreeSet;
use std::panic::{self, AssertUnwindSafe};
use std::time::Instant;

use onion_crypto::onion::OnionAddress;
use tor_sim::clock::SimTime;
use tor_sim::fault::FaultCounters;
use tor_sim::network::{HotPathCounters, NetworkBuilder};

use hs_content::{CertSurvey, CrawlConfig, Crawler};
use hs_deanon::{DeanonAttack, GeoMap};
use hs_harvest::Harvester;
use hs_popularity::{
    ranking::requested_published_share, BotnetForensics, Ranking, Resolver, TrafficConfig,
    TrafficDriver,
};
use hs_portscan::{ScanConfig, Scanner};
use hs_tracking::{scenario, ConsensusArchive, DetectorConfig, HistoryConfig, TrackingDetector};
use hs_world::{GeoDb, World, WorldConfig};

use super::artifacts::{
    ArtifactStore, DeanonReport, DeanonWindowOut, PopularityOut, TrackingReport,
};
use super::seeds::{stage_seed, SeedDomain};
use super::stage::{StageId, StageKind};
use super::timing::{DegradedStage, PipelineTimings, StageTiming};
use crate::study::StudyConfig;

/// How analysis stages execute.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecMode {
    /// One thread per analysis stage (the default).
    #[default]
    Parallel,
    /// Everything inline on the calling thread — the reference order
    /// the parallel mode is tested against.
    Sequential,
}

/// The result of one pipeline run: the filled artifact slots plus the
/// per-stage instrumentation.
#[derive(Debug)]
pub struct PipelineRun {
    /// Artifacts produced by the executed stages.
    pub artifacts: ArtifactStore,
    /// What ran, how long it took, and what was skipped.
    pub timings: PipelineTimings,
}

/// The engine. Owns nothing but the configuration; every run starts
/// from an empty store.
#[derive(Clone, Debug)]
pub struct Pipeline {
    cfg: StudyConfig,
}

type Counters = Vec<(&'static str, u64)>;

/// Appends the network hot-path work done during a sim stage, so cache
/// behaviour (and any determinism drift in it) is visible per stage in
/// `bench_stages.json`.
fn push_hot(counters: &mut Counters, hot: HotPathCounters) {
    counters.push(("sha1_digests", hot.sha1_digests));
    counters.push(("desc_cache_hits", hot.desc_cache_hits));
    counters.push(("desc_cache_misses", hot.desc_cache_misses));
    counters.push(("fetches", hot.fetches));
}

/// Appends the fault-injection work done during a sim stage. Only
/// called when the study runs with an active [`tor_sim::FaultPlan`],
/// so fault-free runs keep the historical counter layout
/// byte-for-byte (the bench baseline diff depends on it).
fn push_faults(counters: &mut Counters, faults: FaultCounters) {
    counters.push(("relay_crashes", faults.relay_crashes));
    counters.push(("relay_restarts", faults.relay_restarts));
    counters.push(("fetch_drops", faults.fetch_drops));
    counters.push(("overload_drops", faults.overload_drops));
    counters.push(("publish_drops", faults.publish_drops));
    counters.push(("service_flaps", faults.service_flaps));
}

/// Extracts a readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("stage panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("stage panicked: {s}")
    } else {
        "stage panicked with a non-string payload".to_owned()
    }
}

/// How many attempts a stage gets before it degrades. Analysis stages
/// are pure functions of the store, so a transient failure is worth
/// one retry; sim stages are deterministic in their inputs — an
/// identical rerun would fail identically — so they get one shot.
fn retry_budget(stage: StageId) -> u32 {
    match stage.kind() {
        StageKind::Sim => 1,
        StageKind::Analysis => 2,
    }
}

/// Chaos hook: the configured failure for `stage` at `attempt`, if
/// any. `fail_stages` fail every attempt (a permanently broken stage);
/// `flaky_stages` fail the first attempt only (a transient fault the
/// retry budget should absorb).
fn injected_failure(cfg: &StudyConfig, stage: StageId, attempt: u32) -> Option<String> {
    if cfg.fail_stages.contains(&stage) {
        return Some(format!("injected permanent failure in `{stage}`"));
    }
    if attempt == 1 && cfg.flaky_stages.contains(&stage) {
        return Some(format!("injected transient failure in `{stage}`"));
    }
    None
}

/// The value an analysis stage hands back to the joiner.
enum AnalysisOut {
    Geomap(DeanonReport),
    Certs(CertSurvey),
    Crawl(Box<hs_content::CrawlReport>),
    Popularity(Box<PopularityOut>),
    Tracking(TrackingReport),
}

impl Pipeline {
    /// Creates an engine for `cfg`.
    pub fn new(cfg: StudyConfig) -> Self {
        Pipeline { cfg }
    }

    /// Runs the dependency closure of `targets`, skipping every stage
    /// the targets do not need. Stage failures degrade (recorded in
    /// [`PipelineTimings::degraded`]) instead of aborting the run.
    pub fn run(&self, targets: &[StageId], mode: ExecMode) -> PipelineRun {
        let plan = StageId::closure(targets);
        let mut store = ArtifactStore::default();
        let mut timings = PipelineTimings {
            executed: Vec::with_capacity(plan.len()),
            skipped: StageId::ALL
                .iter()
                .copied()
                .filter(|s| !plan.contains(s))
                .collect(),
            degraded: Vec::new(),
        };
        let mut failed: BTreeSet<StageId> = BTreeSet::new();

        // Sim prefix: strictly sequential, canonical order.
        for &stage in plan.iter().filter(|s| s.kind() == StageKind::Sim) {
            if let Some(&dep) = stage.deps().iter().find(|d| failed.contains(d)) {
                timings.degraded.push(DegradedStage {
                    stage,
                    error: format!("dependency `{dep}` degraded"),
                    attempts: 0,
                });
                failed.insert(stage);
                continue;
            }
            let started = Instant::now();
            let budget = retry_budget(stage);
            let mut attempts = 0u32;
            let outcome = loop {
                attempts += 1;
                let result = match injected_failure(&self.cfg, stage, attempts) {
                    Some(err) => Err(err),
                    None => panic::catch_unwind(AssertUnwindSafe(|| match stage {
                        StageId::Setup => self.sim_setup(&mut store),
                        StageId::Harvest => self.sim_harvest(&mut store),
                        StageId::DeanonWindow => self.sim_deanon_window(&mut store),
                        StageId::PortScan => self.sim_port_scan(&mut store),
                        _ => unreachable!("analysis stage in sim prefix"),
                    }))
                    .unwrap_or_else(|payload| Err(panic_message(payload))),
                };
                match result {
                    Ok(counters) => break Ok(counters),
                    Err(_) if attempts < budget => continue,
                    Err(err) => break Err(err),
                }
            };
            match outcome {
                Ok(mut counters) => {
                    if attempts > 1 {
                        counters.push(("retries", u64::from(attempts - 1)));
                    }
                    timings.executed.push(StageTiming {
                        stage,
                        wall: started.elapsed(),
                        counters,
                    });
                }
                Err(error) => {
                    timings.degraded.push(DegradedStage {
                        stage,
                        error,
                        attempts,
                    });
                    failed.insert(stage);
                }
            }
        }

        // Analysis wave: pure functions of the sim artifacts. Stages
        // whose dependency already degraded never launch.
        let mut runnable: Vec<StageId> = Vec::new();
        for &stage in plan.iter().filter(|s| s.kind() == StageKind::Analysis) {
            if let Some(&dep) = stage.deps().iter().find(|d| failed.contains(d)) {
                timings.degraded.push(DegradedStage {
                    stage,
                    error: format!("dependency `{dep}` degraded"),
                    attempts: 0,
                });
                failed.insert(stage);
            } else {
                runnable.push(stage);
            }
        }
        let mut results: Vec<AnalysisResult> = match mode {
            ExecMode::Sequential => runnable
                .iter()
                .map(|&stage| run_analysis(stage, &self.cfg, &store))
                .collect(),
            ExecMode::Parallel => {
                let cfg = &self.cfg;
                let shared = &store;
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<(StageId, _)> = runnable
                        .iter()
                        .map(|&stage| {
                            (
                                stage,
                                scope.spawn(move |_| run_analysis(stage, cfg, shared)),
                            )
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|(stage, h)| {
                            h.join().unwrap_or_else(|payload| AnalysisResult {
                                stage,
                                outcome: Err((panic_message(payload), 1)),
                            })
                        })
                        .collect()
                })
                .expect("analysis scope panicked")
            }
        };
        // Join in canonical order regardless of completion order; this
        // is also what makes the degraded list identical between
        // sequential and parallel execution.
        results.sort_by_key(|r| r.stage);
        for r in results {
            match r.outcome {
                Ok((timing, out)) => {
                    match out {
                        AnalysisOut::Geomap(v) => store.deanon = Some(v),
                        AnalysisOut::Certs(v) => store.certs = Some(v),
                        AnalysisOut::Crawl(v) => store.crawl = Some(*v),
                        AnalysisOut::Popularity(v) => store.popularity = Some(*v),
                        AnalysisOut::Tracking(v) => store.tracking = Some(v),
                    }
                    timings.executed.push(timing);
                }
                Err((error, attempts)) => {
                    timings.degraded.push(DegradedStage {
                        stage: r.stage,
                        error,
                        attempts,
                    });
                }
            }
        }
        timings.degraded.sort_by_key(|d| d.stage);

        PipelineRun {
            artifacts: store,
            timings,
        }
    }

    /// Whether this run injects protocol-level faults (and therefore
    /// reports fault counters).
    fn faults_active(&self) -> bool {
        !self.cfg.faults.is_inert()
    }

    /// World generation, network build, guard prepositioning, traffic
    /// driver construction.
    fn sim_setup(&self, store: &mut ArtifactStore) -> Result<Counters, String> {
        let cfg = &self.cfg;
        let world = World::generate(
            WorldConfig::default()
                .with_seed(stage_seed(cfg.seed, SeedDomain::World))
                .with_scale(cfg.scale),
        );
        let geo = GeoDb::new();
        // The fault plan always flows into the builder: an inert plan
        // is the identity (proved by test), and an active one draws
        // its decisions from the dedicated `Faults` seed domain.
        let mut fault_plan = cfg.faults.clone();
        fault_plan.seed = stage_seed(cfg.seed, SeedDomain::Faults);
        let mut net = NetworkBuilder::new()
            .relays(cfg.relays)
            .seed(stage_seed(cfg.seed, SeedDomain::Network))
            .start(SimTime::from_ymd(2013, 2, 1))
            .faults(fault_plan)
            .build();
        world.register_all(&mut net);
        // The attacker's guard relays run long before the measurement:
        // victims' guard sets must have had the chance to include them.
        let attacker_guards = DeanonAttack::preposition_guards(&mut net, &cfg.deanon);
        net.advance_hours(1);
        let traffic = TrafficDriver::new(
            &mut net,
            &world,
            &geo,
            TrafficConfig {
                clients: cfg.traffic_clients,
                seed: stage_seed(cfg.seed, SeedDomain::Traffic),
            },
        );
        let mut counters = vec![
            ("relays", cfg.relays as u64),
            ("services", world.services().len() as u64),
            ("traffic_clients", traffic.clients().len() as u64),
        ];
        push_hot(&mut counters, net.hot_counters());
        if self.faults_active() {
            push_faults(&mut counters, net.fault_counters());
        }
        store.world = Some(world);
        store.geo = Some(geo);
        store.attacker_guards = Some(attacker_guards);
        store.net_setup = Some(net);
        store.traffic_setup = Some(traffic);
        Ok(counters)
    }

    /// The Sec. II trawling attack with live Sec. V traffic.
    fn sim_harvest(&self, store: &mut ArtifactStore) -> Result<Counters, String> {
        let mut net = store.try_net_setup()?.clone();
        let mut traffic = store.try_traffic_setup()?.clone();
        let hot0 = net.hot_counters();
        let faults0 = net.fault_counters();
        let harvester = Harvester::new(self.cfg.harvest.clone());
        let harvest = harvester
            .run(&mut net, |net| {
                traffic.tick_hour(net);
            })
            .map_err(|e| e.to_string())?;
        let mut counters = vec![
            ("descriptors", harvest.onion_count() as u64),
            ("requests_logged", harvest.requests.len() as u64),
            ("waves", u64::from(harvest.waves)),
            ("hours", harvest.hours),
        ];
        push_hot(&mut counters, net.hot_counters().since(hot0));
        if self.faults_active() {
            push_faults(&mut counters, net.fault_counters().since(faults0));
            counters.push(("fleet_restarts", harvest.fleet_restarts));
        }
        store.harvest = Some(harvest);
        store.net_harvest = Some(net);
        store.traffic_harvest = Some(traffic);
        Ok(counters)
    }

    /// The dedicated Sec. VI deanonymisation window: 48 h of signature
    /// logging against the Goldnet front end, branched off the
    /// post-harvest network so the Sec. V popularity logs stay
    /// unbiased and the port scan is unaffected.
    fn sim_deanon_window(&self, store: &mut ArtifactStore) -> Result<Counters, String> {
        let cfg = &self.cfg;
        let mut net = store.try_net_harvest()?.clone();
        let mut traffic = store.try_traffic_harvest()?.clone();
        let hot0 = net.hot_counters();
        let faults0 = net.fault_counters();
        // The paper attacked one of the Goldnet front ends; ask the
        // generated world which service that is instead of hard-coding
        // an address.
        let target: OnionAddress = store
            .try_world()?
            .primary_goldnet_frontend()
            .ok_or_else(|| "world generated no Goldnet front end to attack".to_owned())?
            .onion;
        let mut attack = DeanonAttack::deploy_with_guards(
            &mut net,
            target,
            &cfg.deanon,
            store.try_attacker_guards()?.clone(),
        );
        for _ in 0..cfg.deanon_hours {
            attack.reposition(&mut net);
            net.advance_hours(1);
            traffic.tick_hour(&mut net);
        }
        let observations = net.take_guard_observations();
        let expected_rate = attack.expected_catch_rate(&net);
        let mut counters = vec![
            ("hours", cfg.deanon_hours),
            ("observations", observations.len() as u64),
        ];
        push_hot(&mut counters, net.hot_counters().since(hot0));
        if self.faults_active() {
            push_faults(&mut counters, net.fault_counters().since(faults0));
        }
        store.deanon_window = Some(DeanonWindowOut {
            target,
            observations,
            expected_rate,
        });
        Ok(counters)
    }

    /// The Sec. III multi-day port scan, branched off the post-harvest
    /// network.
    fn sim_port_scan(&self, store: &mut ArtifactStore) -> Result<Counters, String> {
        let mut net = store.try_net_harvest()?.clone();
        let hot0 = net.hot_counters();
        let faults0 = net.fault_counters();
        let scanner = Scanner::new(ScanConfig {
            days: self.cfg.scan_days,
            ..ScanConfig::default()
        });
        let scan = scanner.run(&mut net, store.try_world()?, &store.try_harvest()?.onions);
        let mut counters = vec![
            ("targets", scan.targets as u64),
            ("probes_scheduled", scan.probes_scheduled),
            ("open_ports", u64::from(scan.total_open())),
        ];
        push_hot(&mut counters, net.hot_counters().since(hot0));
        if self.faults_active() {
            push_faults(&mut counters, net.fault_counters().since(faults0));
            counters.push(("fetch_retries", scan.fetch_retries));
            counters.push(("fetch_recovered", scan.fetch_recovered));
            counters.push(("fetch_gave_ups", scan.fetch_gave_ups));
            counters.push(("fetch_gone", scan.fetch_gone));
            counters.push(("retry_backoff_secs", scan.retry_backoff_secs));
        }
        store.scan = Some(scan);
        Ok(counters)
    }
}

/// One analysis stage's outcome: an instrumented artifact, or the
/// error (with attempt count) that degraded it.
struct AnalysisResult {
    stage: StageId,
    outcome: Result<(StageTiming, AnalysisOut), (String, u32)>,
}

/// Executes one analysis stage against the (read-only) store, with
/// panic containment, chaos injection, and the stage retry budget.
fn run_analysis(stage: StageId, cfg: &StudyConfig, store: &ArtifactStore) -> AnalysisResult {
    let started = Instant::now();
    let budget = retry_budget(stage);
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let result = match injected_failure(cfg, stage, attempts) {
            Some(err) => Err(err),
            None => panic::catch_unwind(AssertUnwindSafe(|| analysis_body(stage, cfg, store)))
                .unwrap_or_else(|payload| Err(panic_message(payload))),
        };
        match result {
            Ok((mut counters, out)) => {
                if attempts > 1 {
                    counters.push(("retries", u64::from(attempts - 1)));
                }
                let timing = StageTiming {
                    stage,
                    wall: started.elapsed(),
                    counters,
                };
                return AnalysisResult {
                    stage,
                    outcome: Ok((timing, out)),
                };
            }
            Err(_) if attempts < budget => continue,
            Err(err) => {
                return AnalysisResult {
                    stage,
                    outcome: Err((err, attempts)),
                }
            }
        }
    }
}

/// The un-instrumented analysis stage body.
fn analysis_body(
    stage: StageId,
    cfg: &StudyConfig,
    store: &ArtifactStore,
) -> Result<(Counters, AnalysisOut), String> {
    match stage {
        StageId::Geomap => analysis_geomap(store),
        StageId::Certs => analysis_certs(store),
        StageId::Crawl => analysis_crawl(cfg, store),
        StageId::Popularity => analysis_popularity(cfg, store),
        StageId::Tracking => analysis_tracking(cfg),
        _ => unreachable!("sim stage in analysis wave"),
    }
}

/// Fig. 3: geographic mapping of the deanonymised clients.
fn analysis_geomap(store: &ArtifactStore) -> Result<(Counters, AnalysisOut), String> {
    let window = store.try_deanon_window()?;
    let geomap = GeoMap::build(store.try_geo()?, &window.observations);
    let report = DeanonReport {
        target: window.target,
        unique_clients: geomap.total_clients(),
        expected_rate: window.expected_rate,
        geomap,
    };
    let counters = vec![
        ("unique_clients", u64::from(report.unique_clients)),
        ("countries", report.geomap.country_count() as u64),
    ];
    Ok((counters, AnalysisOut::Geomap(report)))
}

/// Sec. III: the HTTPS certificate survey over everything the scan saw
/// answering on 443.
fn analysis_certs(store: &ArtifactStore) -> Result<(Counters, AnalysisOut), String> {
    let https_onions: Vec<OnionAddress> = store
        .try_scan()?
        .open_by_onion
        .iter()
        .filter(|(_, ports)| ports.contains(&443))
        .map(|(&onion, _)| onion)
        .collect();
    let certs = CertSurvey::run(store.try_world()?, https_onions);
    let counters = vec![("https_destinations", u64::from(certs.https_destinations))];
    Ok((counters, AnalysisOut::Certs(certs)))
}

/// Sec. IV: crawl funnel, Table I, languages, Fig. 2.
fn analysis_crawl(
    cfg: &StudyConfig,
    store: &ArtifactStore,
) -> Result<(Counters, AnalysisOut), String> {
    let destinations = store.try_scan()?.crawl_destinations();
    // A zero transient rate makes `with_config` the identity of
    // `Crawler::new()` (proved by test), so fault-free crawls are
    // untouched.
    let crawler = Crawler::with_config(CrawlConfig {
        transient_failure_rate: cfg.faults.crawl_transient_rate,
        seed: stage_seed(cfg.seed, SeedDomain::Faults),
        retry_attempts: 3,
    });
    let crawl = crawler.run(store.try_world()?, &destinations);
    let mut counters = vec![
        ("destinations", destinations.len() as u64),
        ("pages_classified", crawl.classified.len() as u64),
    ];
    if cfg.faults.crawl_transient_rate > 0.0 {
        counters.push(("transient_failures", crawl.transient_failures));
        counters.push(("connect_retries", crawl.retries));
        counters.push(("gave_ups", crawl.gave_ups));
    }
    Ok((counters, AnalysisOut::Crawl(Box::new(crawl))))
}

/// Sec. V: descriptor-ID resolution, Table II ranking, Goldnet
/// forensics, request share.
fn analysis_popularity(
    cfg: &StudyConfig,
    store: &ArtifactStore,
) -> Result<(Counters, AnalysisOut), String> {
    let harvest = store.try_harvest()?;
    let world = store.try_world()?;
    let resolver = Resolver::build(
        &harvest.onions,
        SimTime::from_ymd(2013, 1, 28),
        SimTime::from_ymd(2013, 2, 8),
    );
    let resolution = resolver.resolve_log(&harvest.requests);
    let ranking = Ranking::build_normalized(&resolution, world, &harvest.slot_hours);
    let top_onions: Vec<OnionAddress> = ranking.top(40).iter().map(|r| r.onion).collect();
    let forensics = BotnetForensics::probe(world, top_onions);
    let requested_published_share = requested_published_share(&resolution, world);
    let mut counters = vec![
        ("requests_resolved", resolution.total_requests),
        ("ranked", ranking.rows().len() as u64),
    ];
    if !cfg.faults.is_inert() {
        counters.push(("unnormalized", ranking.unnormalized() as u64));
    }
    Ok((
        counters,
        AnalysisOut::Popularity(Box::new(PopularityOut {
            resolution,
            ranking,
            forensics,
            requested_published_share,
        })),
    ))
}

/// Sec. VII: consensus-archive tracking detection. Independent of the
/// simulated 2013 network — it generates its own 3-year archive.
fn analysis_tracking(cfg: &StudyConfig) -> Result<(Counters, AnalysisOut), String> {
    let mut archive = ConsensusArchive::generate(&HistoryConfig {
        seed: stage_seed(cfg.seed, SeedDomain::Tracking),
        ..HistoryConfig::default()
    });
    scenario::inject_all(&mut archive, scenario::silkroad());
    let detector = TrackingDetector::new(DetectorConfig::default());
    let years = [
        ("year 1 (Feb–Dec 2011)", (2011, 2, 1), (2011, 12, 31)),
        ("year 2 (2012)", (2012, 1, 1), (2012, 12, 31)),
        ("year 3 (Jan–Oct 2013)", (2013, 1, 1), (2013, 10, 31)),
    ]
    .into_iter()
    .map(|(label, s, e)| {
        (
            label.to_owned(),
            detector.analyse(
                &archive,
                scenario::silkroad(),
                SimTime::from_ymd(s.0, s.1, s.2),
                SimTime::from_ymd(e.0, e.1, e.2),
            ),
        )
    })
    .collect();
    let counters = vec![("consensuses", archive.len() as u64), ("windows", 3)];
    Ok((counters, AnalysisOut::Tracking(TrackingReport { years })))
}

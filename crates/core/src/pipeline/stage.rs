//! The stage graph: identifiers, kinds, and dependency closure.
//!
//! The study pipeline is a fixed DAG of nine stages. **Sim stages**
//! mutate a [`tor_sim::network::Network`] and always execute in the
//! order they appear in [`StageId::ALL`]; each one snapshots the
//! network it produced, and downstream sim stages branch from their
//! input snapshot (which is what makes `DeanonWindow` and `PortScan`
//! independent siblings of the harvest). **Analysis stages** are pure
//! functions of earlier artifacts and may run in parallel.

use std::fmt;

/// What a stage is allowed to touch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StageKind {
    /// Advances the simulated network; ordered and sequential.
    Sim,
    /// Pure computation over existing artifacts; parallelizable.
    Analysis,
}

/// One stage of the study pipeline.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum StageId {
    /// World generation, network build, attacker-guard prepositioning.
    Setup,
    /// The Sec. II trawling attack with live Sec. V traffic.
    Harvest,
    /// The Sec. VI dedicated deanonymisation window (48 h of signature
    /// logging against the Goldnet target).
    DeanonWindow,
    /// The Sec. III multi-day port scan.
    PortScan,
    /// Fig. 3: geographic mapping of the deanonymised clients.
    Geomap,
    /// Sec. III: the HTTPS certificate survey.
    Certs,
    /// Sec. IV: crawl funnel, languages, topics.
    Crawl,
    /// Sec. V: resolution, ranking, forensics, request share.
    Popularity,
    /// Sec. VII: consensus-archive tracking detection.
    Tracking,
}

impl StageId {
    /// Every stage, in canonical execution order. Sim stages come
    /// first and run sequentially in exactly this order.
    pub const ALL: [StageId; 9] = [
        StageId::Setup,
        StageId::Harvest,
        StageId::DeanonWindow,
        StageId::PortScan,
        StageId::Geomap,
        StageId::Certs,
        StageId::Crawl,
        StageId::Popularity,
        StageId::Tracking,
    ];

    /// Stable lower-case name (used in timing output and JSON).
    pub fn name(self) -> &'static str {
        match self {
            StageId::Setup => "setup",
            StageId::Harvest => "harvest",
            StageId::DeanonWindow => "deanon_window",
            StageId::PortScan => "port_scan",
            StageId::Geomap => "geomap",
            StageId::Certs => "certs",
            StageId::Crawl => "crawl",
            StageId::Popularity => "popularity",
            StageId::Tracking => "tracking",
        }
    }

    /// Sim or analysis.
    pub fn kind(self) -> StageKind {
        match self {
            StageId::Setup | StageId::Harvest | StageId::DeanonWindow | StageId::PortScan => {
                StageKind::Sim
            }
            StageId::Geomap
            | StageId::Certs
            | StageId::Crawl
            | StageId::Popularity
            | StageId::Tracking => StageKind::Analysis,
        }
    }

    /// Direct dependencies (the artifacts this stage reads).
    pub fn deps(self) -> &'static [StageId] {
        match self {
            StageId::Setup => &[],
            StageId::Harvest => &[StageId::Setup],
            StageId::DeanonWindow => &[StageId::Harvest],
            StageId::PortScan => &[StageId::Harvest],
            StageId::Geomap => &[StageId::DeanonWindow],
            StageId::Certs => &[StageId::PortScan],
            StageId::Crawl => &[StageId::PortScan],
            StageId::Popularity => &[StageId::Harvest],
            // The archive spans 2011–2013 and is independent of the
            // simulated 2013 network.
            StageId::Tracking => &[],
        }
    }

    /// The dependency closure of `targets`, in canonical execution
    /// order: exactly the stages a selective run must execute.
    pub fn closure(targets: &[StageId]) -> Vec<StageId> {
        let mut needed = [false; StageId::ALL.len()];
        fn mark(stage: StageId, needed: &mut [bool; StageId::ALL.len()]) {
            let idx = StageId::ALL
                .iter()
                .position(|&s| s == stage)
                .expect("stage in ALL");
            if needed[idx] {
                return;
            }
            needed[idx] = true;
            for &dep in stage.deps() {
                mark(dep, needed);
            }
        }
        for &t in targets {
            mark(t, &mut needed);
        }
        StageId::ALL
            .iter()
            .zip(needed)
            .filter_map(|(&s, n)| n.then_some(s))
            .collect()
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_of_scan_skips_deanon_and_analyses() {
        let plan = StageId::closure(&[StageId::PortScan]);
        assert_eq!(
            plan,
            vec![StageId::Setup, StageId::Harvest, StageId::PortScan]
        );
    }

    #[test]
    fn closure_of_geomap_includes_window_but_not_scan() {
        let plan = StageId::closure(&[StageId::Geomap]);
        assert_eq!(
            plan,
            vec![
                StageId::Setup,
                StageId::Harvest,
                StageId::DeanonWindow,
                StageId::Geomap
            ]
        );
    }

    #[test]
    fn closure_of_tracking_is_tracking_alone() {
        assert_eq!(
            StageId::closure(&[StageId::Tracking]),
            vec![StageId::Tracking]
        );
    }

    #[test]
    fn closure_preserves_canonical_order_and_dedups() {
        let plan = StageId::closure(&[StageId::Crawl, StageId::Certs, StageId::Crawl]);
        assert_eq!(
            plan,
            vec![
                StageId::Setup,
                StageId::Harvest,
                StageId::PortScan,
                StageId::Certs,
                StageId::Crawl
            ]
        );
    }

    #[test]
    fn deps_only_point_backwards() {
        for (i, &s) in StageId::ALL.iter().enumerate() {
            for &d in s.deps() {
                let j = StageId::ALL.iter().position(|&x| x == d).unwrap();
                assert!(j < i, "{s} depends on later stage {d}");
            }
        }
    }

    #[test]
    fn sim_prefix_precedes_analyses() {
        let first_analysis = StageId::ALL
            .iter()
            .position(|s| s.kind() == StageKind::Analysis)
            .unwrap();
        assert!(StageId::ALL[..first_analysis]
            .iter()
            .all(|s| s.kind() == StageKind::Sim));
        assert!(StageId::ALL[first_analysis..]
            .iter()
            .all(|s| s.kind() == StageKind::Analysis));
    }
}

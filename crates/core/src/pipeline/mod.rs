//! The staged pipeline engine behind [`crate::Study`].
//!
//! The monolithic end-to-end run is decomposed into a fixed DAG of
//! nine stages over a typed [`ArtifactStore`]:
//!
//! ```text
//!  sim (sequential, canonical order)        analysis (parallel wave)
//!  ─────────────────────────────────        ────────────────────────
//!  setup ─→ harvest ─┬─→ deanon_window ──→  geomap
//!                    ├─→ port_scan ─┬────→  certs
//!                    │              └────→  crawl
//!                    └───────────────────→  popularity
//!  (independent) ──────────────────────→    tracking
//! ```
//!
//! * [`stage`] names the stages and their dependency edges;
//! * [`seeds`] centralises per-stage seed derivation from the root
//!   study seed;
//! * [`artifacts`] is the typed store stages read and write;
//! * [`timing`] records per-stage wall clock and domain counters;
//! * [`engine`] plans a closure and executes it, sequentially or with
//!   the analysis stages fanned out across threads.
//!
//! Selective runs (`Pipeline::run(&[StageId::PortScan], …)`) execute
//! exactly the dependency closure of the requested stages and are
//! byte-identical to the same stages inside a full run, because every
//! sim stage branches a cloned network snapshot instead of mutating a
//! shared timeline.

pub mod artifacts;
pub mod cache;
pub mod control;
pub mod engine;
pub mod seeds;
pub mod stage;
pub mod timing;

pub use artifacts::{ArtifactStore, DeanonReport, DeanonWindowOut, PopularityOut, TrackingReport};
pub use cache::{
    derive_keys, CacheCounters, CacheKey, HarvestBundle, MemoryCache, SetupBundle, StageCache,
    StagePayload,
};
pub use control::{CancelToken, Halt, RunControl};
pub use engine::{ExecMode, Pipeline, PipelineRun, RunOptions};
pub use seeds::{stage_seed, SeedDomain};
pub use stage::{StageId, StageKind};
pub use timing::{DegradedStage, PipelineTimings, StageTiming};

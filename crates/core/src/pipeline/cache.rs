//! Content-addressed stage cache for incremental recompute.
//!
//! Every stage's output is addressed by a [`CacheKey`] derived from
//! the stage's identity, the study's root seed, a fingerprint of the
//! full [`StudyConfig`], and — transitively — the keys of every
//! upstream stage, with the resident daemon's epoch salt folded into
//! the `Setup` key. The chaining gives the incremental-recompute
//! property for free: change any input (seed, scale, fault profile,
//! world epoch) and the `Setup` key changes, which changes every
//! downstream key, so stale artifacts can never be served; leave the
//! inputs alone and a repeated query resolves every stage from cache
//! without touching the simulator.
//!
//! Keys are 128 bits built from two independent SplitMix64 lanes
//! ([`wave::mix2`] with different initial tags), which makes an
//! accidental collision across the handful of keys a daemon ever
//! holds astronomically unlikely.
//!
//! [`StudyConfig`]: crate::StudyConfig

use std::collections::VecDeque;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hs_content::{CertSurvey, CrawlReport};
use hs_harvest::HarvestOutcome;
use hs_popularity::{StreamingPopularity, TrafficDriver};
use hs_portscan::ScanReport;
use hs_world::{GeoDb, World};
use tor_sim::network::Network;
use tor_sim::relay::RelayId;

use super::artifacts::{DeanonReport, DeanonWindowOut, PopularityOut, TrackingReport};
use super::stage::StageId;

/// A 128-bit content address for one stage's output.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// High lane.
    pub hi: u64,
    /// Low lane.
    pub lo: u64,
}

impl CacheKey {
    fn fold(self, v: u64) -> CacheKey {
        CacheKey {
            hi: wave::mix2(self.hi, v),
            lo: wave::mix2(self.lo, v ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    fn fold_key(self, other: CacheKey) -> CacheKey {
        self.fold(other.hi).fold(other.lo)
    }

    fn fold_bytes(self, bytes: &[u8]) -> CacheKey {
        let mut k = self.fold(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            k = k.fold(u64::from_le_bytes(b));
        }
        k
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Derives the per-stage key chain for one (seed, config, epoch)
/// triple, indexed by `StageId as usize`.
///
/// Each stage folds its name, the root seed, and the config
/// fingerprint, then the full key of every dependency (in `deps()`
/// order). `epoch_salt` enters only the `Setup` key; the chaining
/// propagates it to every stage that (transitively) reads the sim
/// world — `Tracking` has no dependencies and is deliberately left
/// epoch-invariant, so its expensive 3-year archive analysis survives
/// world ticks.
pub fn derive_keys(seed: u64, config_fingerprint: u64, epoch_salt: u64) -> [CacheKey; 9] {
    let mut keys = [CacheKey { hi: 0, lo: 0 }; 9];
    for stage in StageId::ALL {
        let mut k = CacheKey {
            hi: 0x6873_6361_6368_6500, // "hscache"
            lo: 0x6b65_7963_6861_696e, // "keychain"
        }
        .fold_bytes(stage.name().as_bytes())
        .fold(seed)
        .fold(config_fingerprint);
        if stage == StageId::Setup {
            k = k.fold(epoch_salt);
        }
        for dep in stage.deps() {
            k = k.fold_key(keys[*dep as usize]);
        }
        keys[stage as usize] = k;
    }
    keys
}

/// Everything the `Setup` stage deposits, bundled for caching.
#[derive(Clone, Debug)]
pub struct SetupBundle {
    /// Ground-truth world.
    pub world: World,
    /// IP-geography database.
    pub geo: GeoDb,
    /// Attacker guard relays.
    pub attacker_guards: Vec<RelayId>,
    /// Network snapshot after setup.
    pub net: Network,
    /// Traffic driver as constructed at setup.
    pub traffic: TrafficDriver,
}

/// Everything the `Harvest` stage deposits, bundled for caching.
#[derive(Clone, Debug)]
pub struct HarvestBundle {
    /// Harvest outcome.
    pub harvest: HarvestOutcome,
    /// Network snapshot after the harvest window.
    pub net: Network,
    /// Traffic driver state after the harvest window.
    pub traffic: TrafficDriver,
    /// Streaming aggregator, when the run used sketches.
    pub streaming: Option<StreamingPopularity>,
}

/// One stage's complete output, shareable across queries without
/// copying: payloads hold [`Arc`]s, so a cache hit is a pointer clone
/// and the artifacts inside are immutable by construction.
#[derive(Clone, Debug)]
pub enum StagePayload {
    /// `Setup` output.
    Setup(Arc<SetupBundle>),
    /// `Harvest` output.
    Harvest(Arc<HarvestBundle>),
    /// `DeanonWindow` output.
    DeanonWindow(Arc<DeanonWindowOut>),
    /// `PortScan` output.
    PortScan(Arc<ScanReport>),
    /// `Geomap` output.
    Geomap(Arc<DeanonReport>),
    /// `Certs` output.
    Certs(Arc<CertSurvey>),
    /// `Crawl` output.
    Crawl(Arc<CrawlReport>),
    /// `Popularity` output.
    Popularity(Arc<PopularityOut>),
    /// `Tracking` output.
    Tracking(Arc<TrackingReport>),
}

impl StagePayload {
    /// The stage this payload belongs to.
    pub fn stage(&self) -> StageId {
        match self {
            StagePayload::Setup(_) => StageId::Setup,
            StagePayload::Harvest(_) => StageId::Harvest,
            StagePayload::DeanonWindow(_) => StageId::DeanonWindow,
            StagePayload::PortScan(_) => StageId::PortScan,
            StagePayload::Geomap(_) => StageId::Geomap,
            StagePayload::Certs(_) => StageId::Certs,
            StagePayload::Crawl(_) => StageId::Crawl,
            StagePayload::Popularity(_) => StageId::Popularity,
            StagePayload::Tracking(_) => StageId::Tracking,
        }
    }

    /// Approximate resident size of this payload in bytes.
    ///
    /// The estimate is a deterministic function of element counts
    /// (per-element constants sized from the dominant struct fields),
    /// not of allocator behaviour — so byte-budget eviction decisions
    /// are identical across runs and machines. Absolute accuracy
    /// matters less than ordering: the sim bundles (world + network
    /// snapshots) must dwarf the flat report payloads, which they do.
    pub fn approx_bytes(&self) -> u64 {
        const BASE: u64 = 256;
        match self {
            StagePayload::Setup(b) => {
                BASE + 4096
                    + 256 * b.net.relays().len() as u64
                    + 192 * b.world.services().len() as u64
                    + 64 * b.net.client_count() as u64
                    + 8 * b.attacker_guards.len() as u64
            }
            StagePayload::Harvest(b) => {
                BASE + 4096
                    + 256 * b.net.relays().len() as u64
                    + 64 * b.net.client_count() as u64
                    + 24 * b.harvest.onions.len() as u64
                    + 48 * b.harvest.requests.len() as u64
                    + 32 * b.harvest.slot_hours.len() as u64
                    + 8 * b.harvest.fleet_relays.len() as u64
                    + if b.streaming.is_some() { 65_536 } else { 0 }
            }
            StagePayload::DeanonWindow(o) => BASE + 48 * o.observations.len() as u64,
            StagePayload::PortScan(r) => {
                BASE + 16 * r.open_by_port.len() as u64 + 40 * r.open_by_onion.len() as u64
            }
            StagePayload::Geomap(r) => BASE + 48 * r.geomap.country_count() as u64,
            StagePayload::Certs(s) => BASE + 64 * s.deanonymised.len() as u64,
            StagePayload::Crawl(r) => {
                BASE + 64 * r.classified.len() as u64 + 16 * r.connected_by_port.len() as u64
            }
            StagePayload::Popularity(p) => {
                BASE + 48 * p.resolution.requests_per_onion.len() as u64
                    + 64 * p.ranking.rows().len() as u64
            }
            StagePayload::Tracking(t) => BASE + 128 * t.years.len() as u64,
        }
    }
}

/// Point-in-time cache statistics.
#[derive(Clone, Copy, Default, Debug)]
pub struct CacheCounters {
    /// Lookups that returned a payload.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Payloads inserted.
    pub insertions: u64,
    /// Payloads evicted by the capacity or byte-budget bound.
    pub evictions: u64,
    /// Payloads currently resident.
    pub entries: u64,
    /// Approximate bytes currently resident
    /// ([`StagePayload::approx_bytes`] summed over entries).
    pub resident_bytes: u64,
    /// Approximate bytes freed by evictions over the cache's lifetime.
    pub evicted_bytes: u64,
}

/// A content-addressed stage cache shared between the daemon and the
/// engine. Implementations must be safe for concurrent queries.
pub trait StageCache: Send + Sync {
    /// Fetches the payload for `key`, counting a hit or miss.
    fn lookup(&self, key: CacheKey) -> Option<StagePayload>;
    /// Whether `key` is resident, *without* touching the hit/miss
    /// counters — used by `GET` probes that must not skew metrics.
    fn peek(&self, key: CacheKey) -> bool;
    /// Fetches the payload for `key` without touching the hit/miss
    /// counters. The daemon's `GET` path uses this so read-only
    /// artifact queries never skew the recompute-cache statistics.
    fn fetch_uncounted(&self, key: CacheKey) -> Option<StagePayload>;
    /// Stores the payload for `key`.
    fn insert(&self, key: CacheKey, payload: StagePayload);
    /// Current statistics.
    fn counters(&self) -> CacheCounters;
}

/// In-memory [`StageCache`] with a bounded entry count, an optional
/// resident-byte budget, and insertion-order eviction.
///
/// Insertion order (not LRU) keeps eviction deterministic under
/// concurrent readers: lookups never reorder anything, so the eviction
/// sequence depends only on the sequence of inserts. Byte weights come
/// from [`StagePayload::approx_bytes`]; when a budget is set, inserts
/// evict oldest-first until both the entry bound and the byte budget
/// hold — never dropping the last remaining entry, even when it alone
/// exceeds the budget (an empty cache would just thrash). Keys pinned
/// via [`MemoryCache::pin`] are skipped by eviction entirely.
pub struct MemoryCache {
    capacity: usize,
    byte_budget: Option<u64>,
    inner: Mutex<MemoryCacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
}

#[derive(Default)]
struct MemoryCacheInner {
    map: HashMap<CacheKey, (StagePayload, u64)>,
    order: VecDeque<CacheKey>,
    resident_bytes: u64,
    /// Keys exempt from eviction (a resident daemon epoch's Setup
    /// payload). Pinned keys still count toward `resident_bytes`.
    pinned: HashSet<CacheKey>,
}

impl MemoryCache {
    /// A cache holding at most `capacity` payloads (minimum 1), with
    /// no byte budget.
    pub fn new(capacity: usize) -> Self {
        MemoryCache {
            capacity: capacity.max(1),
            byte_budget: None,
            inner: Mutex::new(MemoryCacheInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
        }
    }

    /// A cache bounded by both entry count and an approximate
    /// resident-byte budget.
    pub fn with_byte_budget(capacity: usize, budget_bytes: u64) -> Self {
        let mut cache = MemoryCache::new(capacity);
        cache.byte_budget = Some(budget_bytes);
        cache
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, MemoryCacheInner> {
        // A poisoned cache mutex means a panic while holding the lock;
        // payload inserts/removes cannot leave the map inconsistent,
        // so recover the guard rather than poisoning every query.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl fmt::Debug for MemoryCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.counters();
        f.debug_struct("MemoryCache")
            .field("capacity", &self.capacity)
            .field("counters", &c)
            .finish()
    }
}

impl MemoryCache {
    /// Exempts `key` from eviction until [`MemoryCache::unpin`]. The
    /// key need not be resident yet: pinning before the insert closes
    /// the window in which a concurrent insert could evict it. Pinned
    /// payloads still count toward the byte budget; eviction simply
    /// skips them. A resident daemon pins the live epoch's Setup
    /// payload so a byte-budget squeeze can never evict the world out
    /// from under `TICK`.
    pub fn pin(&self, key: CacheKey) {
        self.locked().pinned.insert(key);
    }

    /// Makes `key` evictable again (no-op if it was not pinned).
    pub fn unpin(&self, key: CacheKey) {
        self.locked().pinned.remove(&key);
    }

    /// Whether `key` is currently pinned.
    pub fn is_pinned(&self, key: CacheKey) -> bool {
        self.locked().pinned.contains(&key)
    }

    /// Evicts oldest-first — skipping pinned keys — until the entry
    /// bound and byte budget both hold, never dropping the last
    /// remaining entry. If only pinned entries remain, eviction stops
    /// even while over budget.
    fn enforce_bounds(&self, inner: &mut MemoryCacheInner) {
        let over = |inner: &MemoryCacheInner| {
            inner.map.len() > self.capacity
                || self
                    .byte_budget
                    .is_some_and(|budget| inner.resident_bytes > budget)
        };
        while inner.map.len() > 1 && over(inner) {
            let Some(pos) = inner
                .order
                .iter()
                .position(|key| !inner.pinned.contains(key))
            else {
                break;
            };
            let Some(old) = inner.order.remove(pos) else {
                break;
            };
            if let Some((_, weight)) = inner.map.remove(&old) {
                inner.resident_bytes = inner.resident_bytes.saturating_sub(weight);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.evicted_bytes.fetch_add(weight, Ordering::Relaxed);
            }
        }
    }
}

impl StageCache for MemoryCache {
    fn lookup(&self, key: CacheKey) -> Option<StagePayload> {
        let found = self.locked().map.get(&key).map(|(p, _)| p.clone());
        match found {
            Some(p) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(p)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn peek(&self, key: CacheKey) -> bool {
        self.locked().map.contains_key(&key)
    }

    fn fetch_uncounted(&self, key: CacheKey) -> Option<StagePayload> {
        self.locked().map.get(&key).map(|(p, _)| p.clone())
    }

    fn insert(&self, key: CacheKey, payload: StagePayload) {
        let weight = payload.approx_bytes();
        let mut inner = self.locked();
        match inner.map.insert(key, (payload, weight)) {
            None => {
                inner.order.push_back(key);
                inner.resident_bytes += weight;
            }
            Some((_, old_weight)) => {
                inner.resident_bytes = inner.resident_bytes.saturating_sub(old_weight) + weight;
            }
        }
        self.enforce_bounds(&mut inner);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    fn counters(&self) -> CacheCounters {
        let (entries, resident_bytes) = {
            let inner = self.locked();
            (inner.map.len() as u64, inner.resident_bytes)
        };
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            resident_bytes,
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(stage_tag: u64) -> StagePayload {
        if stage_tag.is_multiple_of(2) {
            StagePayload::Certs(Arc::new(CertSurvey::default()))
        } else {
            StagePayload::PortScan(Arc::new(ScanReport::default()))
        }
    }

    #[test]
    fn keys_are_pairwise_distinct() {
        let keys = derive_keys(7, 42, 0);
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn epoch_salt_changes_every_key_except_tracking() {
        let a = derive_keys(7, 42, 0);
        let b = derive_keys(7, 42, 1);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            if StageId::ALL[i] == StageId::Tracking {
                // Tracking reads no sim artifact (its dependency list
                // is empty), so a world-epoch change must NOT
                // invalidate its cached analysis.
                assert_eq!(x, y);
            } else {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn seed_and_config_change_every_key() {
        let base = derive_keys(7, 42, 0);
        for other in [derive_keys(8, 42, 0), derive_keys(7, 43, 0)] {
            for (x, y) in base.iter().zip(&other) {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn derivation_is_stable() {
        assert_eq!(derive_keys(7, 42, 0), derive_keys(7, 42, 0));
    }

    #[test]
    fn memory_cache_counts_and_evicts_in_insert_order() {
        let cache = MemoryCache::new(2);
        let keys = derive_keys(1, 2, 3);
        assert!(cache.lookup(keys[0]).is_none());
        cache.insert(keys[0], dummy(0));
        cache.insert(keys[1], dummy(1));
        assert!(cache.lookup(keys[0]).is_some());
        cache.insert(keys[2], dummy(2)); // evicts keys[0]
        assert!(!cache.peek(keys[0]));
        assert!(cache.peek(keys[1]) && cache.peek(keys[2]));
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (1, 1));
        assert_eq!(c.insertions, 3);
        assert_eq!(c.evictions, 1);
        assert_eq!(c.entries, 2);
    }

    #[test]
    fn peek_does_not_touch_counters() {
        let cache = MemoryCache::new(2);
        let keys = derive_keys(1, 2, 3);
        assert!(!cache.peek(keys[0]));
        cache.insert(keys[0], dummy(0));
        assert!(cache.peek(keys[0]));
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (0, 0));
    }

    #[test]
    fn payload_weights_are_deterministic_and_ordered() {
        let flat = dummy(0).approx_bytes();
        assert_eq!(flat, dummy(0).approx_bytes());
        assert!(flat >= 256);
        let mut survey = CertSurvey::default();
        survey.deanonymised.push((
            onion_crypto::onion::OnionAddress::from_pubkey(&[1u8; 16]),
            "host.example".to_string(),
        ));
        let heavier = StagePayload::Certs(Arc::new(survey)).approx_bytes();
        assert!(heavier > flat);
    }

    #[test]
    fn byte_budget_evicts_oldest_and_tracks_bytes() {
        let weight = dummy(0).approx_bytes();
        // Budget fits exactly two flat payloads; capacity is generous.
        let cache = MemoryCache::with_byte_budget(16, weight * 2);
        let keys = derive_keys(1, 2, 3);
        cache.insert(keys[0], dummy(0));
        cache.insert(keys[1], dummy(0));
        let c = cache.counters();
        assert_eq!(c.entries, 2);
        assert_eq!(c.resident_bytes, weight * 2);
        assert_eq!((c.evictions, c.evicted_bytes), (0, 0));
        cache.insert(keys[2], dummy(0)); // over budget: keys[0] goes
        assert!(!cache.peek(keys[0]));
        assert!(cache.peek(keys[1]) && cache.peek(keys[2]));
        let c = cache.counters();
        assert_eq!(c.entries, 2);
        assert_eq!(c.resident_bytes, weight * 2);
        assert_eq!((c.evictions, c.evicted_bytes), (1, weight));
    }

    #[test]
    fn byte_budget_always_keeps_newest_entry() {
        let cache = MemoryCache::with_byte_budget(16, 1);
        let keys = derive_keys(1, 2, 3);
        cache.insert(keys[0], dummy(0));
        cache.insert(keys[1], dummy(1));
        // Each payload alone exceeds the 1-byte budget, but the newest
        // must survive.
        assert!(!cache.peek(keys[0]));
        assert!(cache.peek(keys[1]));
        assert_eq!(cache.counters().entries, 1);
    }

    #[test]
    fn reinsert_adjusts_resident_bytes_without_double_count() {
        let cache = MemoryCache::new(4);
        let keys = derive_keys(1, 2, 3);
        cache.insert(keys[0], dummy(0));
        let first = cache.counters().resident_bytes;
        cache.insert(keys[0], dummy(1));
        let second = cache.counters().resident_bytes;
        assert_eq!(second, dummy(1).approx_bytes());
        assert_ne!(first, 0);
        assert_eq!(cache.counters().entries, 1);
    }

    #[test]
    fn reinsert_same_key_does_not_grow_order() {
        let cache = MemoryCache::new(2);
        let keys = derive_keys(1, 2, 3);
        cache.insert(keys[0], dummy(0));
        cache.insert(keys[0], dummy(0));
        cache.insert(keys[1], dummy(1));
        assert!(cache.peek(keys[0]) && cache.peek(keys[1]));
        assert_eq!(cache.counters().entries, 2);
        assert_eq!(cache.counters().evictions, 0);
    }

    #[test]
    fn pinned_key_survives_eviction_pressure() {
        let cache = MemoryCache::new(2);
        let keys = derive_keys(1, 2, 3);
        cache.pin(keys[0]);
        cache.insert(keys[0], dummy(0));
        cache.insert(keys[1], dummy(1));
        // Over capacity: eviction must skip the pinned oldest entry
        // and drop the next-oldest unpinned one instead.
        cache.insert(keys[2], dummy(2));
        assert!(cache.peek(keys[0]), "pinned key evicted");
        assert!(!cache.peek(keys[1]));
        assert!(cache.peek(keys[2]));
        assert_eq!(cache.counters().entries, 2);
    }

    #[test]
    fn pinned_key_survives_byte_budget_squeeze() {
        let cache = MemoryCache::with_byte_budget(16, 1);
        let keys = derive_keys(1, 2, 3);
        cache.pin(keys[0]);
        cache.insert(keys[0], dummy(0));
        for (i, key) in keys.iter().enumerate().skip(1).take(4) {
            cache.insert(*key, dummy(i as u64));
        }
        // Every unpinned insert was squeezed out, the pin held.
        assert!(cache.peek(keys[0]), "pinned key evicted by byte budget");
        assert_eq!(cache.counters().entries, 1);
    }

    #[test]
    fn unpin_restores_evictability() {
        let cache = MemoryCache::new(2);
        let keys = derive_keys(1, 2, 3);
        cache.pin(keys[0]);
        assert!(cache.is_pinned(keys[0]));
        cache.insert(keys[0], dummy(0));
        cache.insert(keys[1], dummy(1));
        cache.unpin(keys[0]);
        assert!(!cache.is_pinned(keys[0]));
        cache.insert(keys[2], dummy(2));
        // With the pin gone, plain insertion-order eviction resumes.
        assert!(!cache.peek(keys[0]));
        assert!(cache.peek(keys[1]) && cache.peek(keys[2]));
    }

    #[test]
    fn all_pinned_entries_stop_eviction_without_spinning() {
        let cache = MemoryCache::new(1);
        let keys = derive_keys(1, 2, 3);
        cache.pin(keys[0]);
        cache.pin(keys[1]);
        cache.insert(keys[0], dummy(0));
        cache.insert(keys[1], dummy(1));
        // Over capacity but everything is pinned: eviction gives up
        // rather than loop or drop a pinned payload.
        assert!(cache.peek(keys[0]) && cache.peek(keys[1]));
        assert_eq!(cache.counters().entries, 2);
        assert_eq!(cache.counters().evictions, 0);
    }
}

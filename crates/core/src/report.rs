//! Text rendering of every table and figure, shared by the examples
//! and the benchmark binaries.

use std::fmt::Write as _;

use hs_content::{CertSurvey, CrawlReport};
use hs_popularity::{Ranking, ResolutionReport, SketchSummary};
use hs_portscan::ScanReport;

use crate::pipeline::PipelineTimings;
use crate::study::{DeanonReport, TrackingReport};

/// Renders Fig. 1 (open-ports distribution) as an aligned text table.
pub fn render_fig1(scan: &ScanReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 1 — Open ports distribution");
    let _ = writeln!(out, "{:<16} {:>8}", "port", "open");
    for (label, count) in scan.fig1_rows(50) {
        let _ = writeln!(out, "{label:<16} {count:>8}");
    }
    let _ = writeln!(
        out,
        "total {} open ports on {} addresses ({} unique ports, coverage {:.0}%)",
        scan.total_open(),
        scan.with_descriptors,
        scan.unique_ports(),
        scan.coverage() * 100.0
    );
    out
}

/// Renders Table I (HTTP/HTTPS access per port).
pub fn render_table1(crawl: &CrawlReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table I — HTTP and HTTPS access");
    let _ = writeln!(out, "{:<10} {:>10}", "port", "# onions");
    for (label, count) in crawl.table1_rows() {
        let _ = writeln!(out, "{label:<10} {count:>10}");
    }
    let _ = writeln!(
        out,
        "attempted {} → still open {} → connected {}",
        crawl.attempted, crawl.still_open, crawl.connected
    );
    out
}

/// Renders the Sec. IV exclusion funnel and language histogram.
pub fn render_funnel_and_languages(crawl: &CrawlReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Sec. IV funnel:");
    let _ = writeln!(
        out,
        "  connected {} | errors {} | short {} (ssh {}) | 443-dups {} | classified {}",
        crawl.connected,
        crawl.excluded_errors,
        crawl.excluded_short,
        crawl.ssh_banners,
        crawl.excluded_mirrors,
        crawl.classified.len()
    );
    let total = crawl.classified.len().max(1);
    let _ = writeln!(
        out,
        "Languages ({} classified pages):",
        crawl.classified.len()
    );
    for (lang, count) in crawl.language_histogram() {
        let _ = writeln!(
            out,
            "  {:<4} {:>6}  ({:.1}%)",
            lang.code(),
            count,
            100.0 * f64::from(count) / total as f64
        );
    }
    out
}

/// Renders Fig. 2 (topic distribution).
pub fn render_fig2(crawl: &CrawlReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 2 — Topics distribution ({} English non-default pages; {} TorHost defaults removed)",
        crawl.topic_classified_count(),
        crawl.torhost_count()
    );
    for (topic, count, pct) in crawl.fig2_rows() {
        let bar = "#".repeat((pct.round() as usize).min(40));
        let _ = writeln!(out, "{:<18} {count:>5} {pct:>5.1}% {bar}", topic.label());
    }
    out
}

/// Renders Table II (popularity ranking), `n` rows.
pub fn render_table2(ranking: &Ranking, n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table II — Ranking of most popular hidden services");
    let _ = writeln!(out, "{:<5} {:>8}  {:<22} Desc", "#", "RQSTS", "Addr");
    for row in ranking.top(n) {
        let _ = writeln!(
            out,
            "{:<5} {:>8}  {:<22} {}",
            row.rank,
            row.requests,
            row.onion.to_string(),
            row.label
        );
    }
    out
}

/// Renders the Sec. V resolution statistics.
pub fn render_sec5(resolution: &ResolutionReport, requested_share: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Sec. V — Popularity measurement");
    let _ = writeln!(
        out,
        "  total requests        {:>10}",
        resolution.total_requests
    );
    let _ = writeln!(
        out,
        "  unique descriptor IDs {:>10}",
        resolution.unique_desc_ids
    );
    let _ = writeln!(
        out,
        "  resolved IDs          {:>10}",
        resolution.resolved_desc_ids
    );
    let _ = writeln!(
        out,
        "  resolved onions       {:>10}",
        resolution.resolved_onions
    );
    let _ = writeln!(
        out,
        "  phantom request share {:>9.1}%",
        resolution.phantom_share() * 100.0
    );
    let _ = writeln!(
        out,
        "  published services ever requested {:>5.1}%",
        requested_share * 100.0
    );
    out
}

/// Renders the streaming-sketch state line printed under Sec. V when
/// the study ran with [`crate::StudyConfig::streaming`] set.
pub fn render_sketch(sketch: &SketchSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  streaming sketches: cms {}x{}, top-k {}/{} tracked ({} evictions), \
         hll p={} ≈{:.0} ids, {} KiB, {} requests in {} batches",
        sketch.cms_width,
        sketch.cms_depth,
        sketch.topk_tracked,
        sketch.topk_capacity,
        sketch.topk_churn,
        sketch.hll_precision,
        sketch.hll_estimate,
        sketch.memory_bytes / 1024,
        sketch.total_requests,
        sketch.batches
    );
    out
}

/// Renders the Sec. III certificate survey.
pub fn render_certs(certs: &CertSurvey) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Sec. III — HTTPS certificates");
    let _ = writeln!(
        out,
        "  HTTPS destinations           {:>6}",
        certs.https_destinations
    );
    let _ = writeln!(
        out,
        "  self-signed, CN mismatch     {:>6}",
        certs.self_signed_mismatch
    );
    let _ = writeln!(
        out,
        "  … with the TorHost CN        {:>6}",
        certs.torhost_cn
    );
    let _ = writeln!(
        out,
        "  clearnet DNS CN (deanon.)    {:>6}",
        certs.clearnet_dns
    );
    let _ = writeln!(
        out,
        "  matching onion CN            {:>6}",
        certs.matching_onion
    );
    for (onion, name) in certs.deanonymised.iter().take(5) {
        let _ = writeln!(out, "    {onion} → {name}");
    }
    out
}

/// Renders the Fig. 3 client map.
pub fn render_fig3(deanon: &DeanonReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 3 — Clients of {} ({} unique clients, {} countries; expected catch rate {:.1}%/fetch)",
        deanon.target,
        deanon.unique_clients,
        deanon.geomap.country_count(),
        deanon.expected_rate * 100.0
    );
    out.push_str(&deanon.geomap.ascii_map());
    out.push('\n');
    for (code, name, count) in deanon.geomap.rows().iter().take(12) {
        let _ = writeln!(out, "  {code} {name:<18} {count:>5}");
    }
    out
}

/// Renders the Sec. VII per-year tracking findings.
pub fn render_tracking(tracking: &TrackingReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Sec. VII — Tracking detection (Silk Road)");
    for (label, analysis) in &tracking.years {
        let trackers = analysis.trackers();
        let _ = writeln!(
            out,
            "{label}: mean HSDirs {:.0}, {} suspicious server(s), {} tracker(s)",
            analysis.mean_hsdirs,
            analysis.suspicious().len(),
            trackers.len()
        );
        for t in trackers.iter().take(8) {
            let _ = writeln!(
                out,
                "  {} ({}): responsible {}x (μ={:.2}, σ={:.2}), ratio {:.0}, switches {} ({} pre-responsibility), rules {:?}",
                t.key.ip,
                t.nicknames.join(","),
                t.responsible_days.len(),
                t.expected,
                t.sigma,
                t.max_ratio,
                t.fingerprint_switches,
                t.switches_before_responsible,
                t.suspicions
            );
        }
    }
    out
}

/// Renders the per-stage timing and counter table of a pipeline run,
/// including which stages the plan skipped.
pub fn render_stage_timings(timings: &PipelineTimings) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Pipeline stages");
    let _ = writeln!(out, "{:<14} {:>10}  counters", "stage", "wall");
    for t in &timings.executed {
        let counters = t
            .counters
            .iter()
            .map(|(name, value)| format!("{name}={value}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "{:<14} {:>8.1}ms  {counters}",
            t.stage.name(),
            t.wall.as_secs_f64() * 1e3
        );
    }
    for s in &timings.skipped {
        let _ = writeln!(out, "{:<14}    skipped", s.name());
    }
    for d in &timings.degraded {
        let _ = writeln!(
            out,
            "{:<14}    DEGRADED after {} attempt(s): {}",
            d.stage.name(),
            d.attempts,
            d.error
        );
    }
    let sha1 = timings.counter_total("sha1_digests");
    let hits = timings.counter_total("desc_cache_hits");
    let misses = timings.counter_total("desc_cache_misses");
    let fetches = timings.counter_total("fetches");
    if hits + misses > 0 {
        let _ = writeln!(
            out,
            "hot path: {sha1} SHA-1 digests, desc cache {hits} hits / {misses} misses ({:.1}% hit rate), {fetches} fetches",
            100.0 * hits as f64 / (hits + misses) as f64
        );
    }
    // Fault-injection summary. The counters only exist when the study
    // ran with an active fault plan, so fault-free output is unchanged.
    let faults_reported = timings
        .executed
        .iter()
        .any(|t| t.counter("relay_crashes").is_some());
    if faults_reported {
        let _ = writeln!(
            out,
            "faults: {} relay crashes ({} restarts), {} fetch drops ({} overload), {} publish drops, {} service flaps",
            timings.counter_total("relay_crashes"),
            timings.counter_total("relay_restarts"),
            timings.counter_total("fetch_drops"),
            timings.counter_total("overload_drops"),
            timings.counter_total("publish_drops"),
            timings.counter_total("service_flaps"),
        );
    }
    let stage_retries = timings.counter_total("retries");
    if stage_retries > 0 {
        let _ = writeln!(out, "stage retries absorbed: {stage_retries}");
    }
    // Both wall-clock notions: the per-stage sum over-counts the
    // parallel analysis wave; elapsed is the stopwatch number.
    let _ = writeln!(
        out,
        "wall: {:.1} ms summed across stage bodies, {:.1} ms elapsed",
        timings.total_wall().as_secs_f64() * 1e3,
        timings.elapsed.as_secs_f64() * 1e3
    );
    let hists = timings.histograms();
    if !hists.is_empty() {
        let _ = writeln!(out, "distributions (n, p50/p90/p99, max):");
        for (_, name, h) in hists {
            let _ = writeln!(
                out,
                "  {name:<32} n={:<8} {}/{}/{}  max {}",
                h.count(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max()
            );
        }
    }
    out
}

/// Renders the degraded-stage section of a partial report. Empty when
/// every planned stage completed.
pub fn render_degraded(timings: &PipelineTimings) -> String {
    if timings.degraded.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "PARTIAL REPORT — {} stage(s) degraded:",
        timings.degraded.len()
    );
    for d in &timings.degraded {
        let _ = writeln!(
            out,
            "  {:<14} after {} attempt(s): {}",
            d.stage.name(),
            d.attempts,
            d.error
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{Study, StudyConfig};

    #[test]
    fn all_renderers_produce_output() {
        let report = Study::new(StudyConfig::test_scale()).run();
        assert!(report.is_complete(), "{:?}", report.degraded_stages());
        assert!(render_fig1(report.scan.as_ref().unwrap()).contains("Fig. 1"));
        assert!(render_table1(report.crawl.as_ref().unwrap()).contains("Table I"));
        assert!(render_funnel_and_languages(report.crawl.as_ref().unwrap()).contains("Languages"));
        assert!(render_fig2(report.crawl.as_ref().unwrap()).contains("Fig. 2"));
        assert!(render_table2(report.ranking.as_ref().unwrap(), 30).contains("Table II"));
        assert!(render_sec5(
            report.resolution.as_ref().unwrap(),
            report.requested_published_share.unwrap()
        )
        .contains("phantom"));
        assert!(render_certs(report.certs.as_ref().unwrap()).contains("HTTPS"));
        assert!(render_fig3(report.deanon.as_ref().unwrap()).contains("Fig. 3"));
        let stages = render_stage_timings(&report.stages);
        assert!(stages.contains("harvest"), "{stages}");
        assert!(stages.contains("skipped"), "{stages}");
        assert!(stages.contains("hot path:"), "{stages}");
        // Fault-free run: no fault summary, no degraded section.
        assert!(!stages.contains("faults:"), "{stages}");
        assert!(render_degraded(&report.stages).is_empty());
        // Exact path: no sketch section to render.
        assert!(report.sketch.is_none());
    }

    #[test]
    fn sketch_renderer_reports_the_exactness_signals() {
        let line = render_sketch(&SketchSummary {
            cms_width: 16_384,
            cms_depth: 4,
            topk_capacity: 8_192,
            topk_tracked: 775,
            topk_churn: 0,
            hll_precision: 12,
            hll_estimate: 777.0,
            memory_bytes: 823_296,
            total_requests: 14_748,
            batches: 401,
        });
        assert!(line.contains("cms 16384x4"), "{line}");
        assert!(line.contains("775/8192 tracked (0 evictions)"), "{line}");
        assert!(line.contains("14748 requests in 401 batches"), "{line}");
    }
}

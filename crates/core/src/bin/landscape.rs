//! `landscape` — command-line front end for the study pipeline.
//!
//! ```text
//! landscape study   [--scale S] [--seed N]   run the full pipeline, print all artifacts
//! landscape fig1    [--scale S] [--seed N]   open-ports distribution (Fig. 1)
//! landscape table1  [--scale S] [--seed N]   HTTP/HTTPS access (Table I)
//! landscape fig2    [--scale S] [--seed N]   topics distribution (Fig. 2)
//! landscape table2  [--scale S] [--seed N]   popularity ranking (Table II)
//! landscape fig3    [--scale S] [--seed N]   client geo map (Fig. 3)
//! landscape certs   [--scale S] [--seed N]   certificate survey (Sec. III)
//! landscape sec5    [--scale S] [--seed N]   popularity statistics (Sec. V)
//! landscape tracking [--seed N]              Silk Road tracking detection (Sec. VII)
//! ```

use std::process::ExitCode;

use hs_landscape::{report, Study, StudyConfig};

struct Args {
    command: String,
    scale: f64,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut scale = 0.1f64;
    let mut seed = 0x2013_0204u64;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value".to_owned())?;
                scale = v.parse().map_err(|_| format!("bad scale {v:?}"))?;
                if !(scale > 0.0 && scale <= 1.0) {
                    return Err("scale must be in (0, 1]".to_owned());
                }
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value".to_owned())?;
                seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(Args { command, scale, seed })
}

fn usage() -> String {
    "usage: landscape <study|fig1|table1|fig2|table2|fig3|certs|sec5|tracking> \
     [--scale S] [--seed N]"
        .to_owned()
}

fn study_config(args: &Args) -> StudyConfig {
    StudyConfig {
        seed: args.seed,
        scale: args.scale,
        relays: ((1_400.0 * args.scale) as usize).clamp(150, 1_400),
        harvest: hs_landscape::hs_harvest::HarvestConfig {
            fleet: hs_landscape::hs_harvest::FleetConfig {
                ips: ((58.0 * args.scale) as u32).max(8),
                relays_per_ip: 24,
                bandwidth: 400,
            },
            warmup_hours: 26,
            rotation_hours: 2,
        },
        scan_days: 7,
        traffic_clients: ((500.0 * args.scale) as usize).max(60),
        run_tracking: false,
        ..StudyConfig::default()
    }
}

fn run_tracking(seed: u64) {
    use hs_landscape::hs_tracking::{
        scenario, ConsensusArchive, DetectorConfig, HistoryConfig, TrackingDetector,
    };
    use hs_landscape::tor_sim::clock::SimTime;
    use hs_landscape::TrackingReport;

    let mut archive = ConsensusArchive::generate(&HistoryConfig {
        seed,
        ..HistoryConfig::default()
    });
    scenario::inject_all(&mut archive, scenario::silkroad());
    let detector = TrackingDetector::new(DetectorConfig::default());
    let years = [
        ("year 1 (Feb–Dec 2011)", (2011, 2, 1), (2011, 12, 31)),
        ("year 2 (2012)", (2012, 1, 1), (2012, 12, 31)),
        ("year 3 (Jan–Oct 2013)", (2013, 1, 1), (2013, 10, 31)),
    ]
    .into_iter()
    .map(|(label, s, e)| {
        (
            label.to_owned(),
            detector.analyse(
                &archive,
                scenario::silkroad(),
                SimTime::from_ymd(s.0, s.1, s.2),
                SimTime::from_ymd(e.0, e.1, e.2),
            ),
        )
    })
    .collect();
    println!("{}", report::render_tracking(&TrackingReport { years }));
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    if args.command == "tracking" {
        run_tracking(args.seed);
        return ExitCode::SUCCESS;
    }
    const COMMANDS: &[&str] = &[
        "study", "fig1", "table1", "fig2", "table2", "fig3", "certs", "sec5",
    ];
    if !COMMANDS.contains(&args.command.as_str()) {
        eprintln!("unknown command {:?}\n{}", args.command, usage());
        return ExitCode::FAILURE;
    }

    let results = Study::new(study_config(&args)).run();
    match args.command.as_str() {
        "study" => {
            println!("{}", report::render_fig1(&results.scan));
            println!("{}", report::render_certs(&results.certs));
            println!("{}", report::render_table1(&results.crawl));
            println!("{}", report::render_funnel_and_languages(&results.crawl));
            println!("{}", report::render_fig2(&results.crawl));
            println!("{}", report::render_table2(&results.ranking, 30));
            println!(
                "{}",
                report::render_sec5(&results.resolution, results.requested_published_share)
            );
            println!("{}", report::render_fig3(&results.deanon));
        }
        "fig1" => println!("{}", report::render_fig1(&results.scan)),
        "table1" => println!("{}", report::render_table1(&results.crawl)),
        "fig2" => {
            println!("{}", report::render_funnel_and_languages(&results.crawl));
            println!("{}", report::render_fig2(&results.crawl));
        }
        "table2" => println!("{}", report::render_table2(&results.ranking, 30)),
        "fig3" => println!("{}", report::render_fig3(&results.deanon)),
        "certs" => println!("{}", report::render_certs(&results.certs)),
        "sec5" => println!(
            "{}",
            report::render_sec5(&results.resolution, results.requested_published_share)
        ),
        other => {
            eprintln!("unknown command {other:?}\n{}", usage());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

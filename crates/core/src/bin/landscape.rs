//! `landscape` — command-line front end for the study pipeline.
//!
//! Figure-specific commands run only the dependency closure of the
//! stages they need (e.g. `fig1` never pays for the deanonymisation
//! window, the crawl, or tracking). Every invocation writes the
//! per-stage wall-clock timings — executed *and* skipped stages — to
//! `results/bench_stages.json`.
//!
//! ```text
//! landscape study   [--scale S] [--seed N]   run the full pipeline, print all artifacts
//! landscape fig1    [--scale S] [--seed N]   open-ports distribution (Fig. 1)
//! landscape table1  [--scale S] [--seed N]   HTTP/HTTPS access (Table I)
//! landscape fig2    [--scale S] [--seed N]   topics distribution (Fig. 2)
//! landscape table2  [--scale S] [--seed N]   popularity ranking (Table II)
//! landscape fig3    [--scale S] [--seed N]   client geo map (Fig. 3)
//! landscape certs   [--scale S] [--seed N]   certificate survey (Sec. III)
//! landscape sec5    [--scale S] [--seed N]   popularity statistics (Sec. V)
//! landscape tracking [--seed N]              Silk Road tracking detection (Sec. VII)
//! landscape stages  [--scale S] [--seed N]   print the stage plan and timings only
//! ```
//!
//! Observability flags (any command):
//!
//! ```text
//! --threads N     measurement-wave worker threads (default: available
//!                 parallelism). Output is byte-identical at any N.
//! --streaming     aggregate the Sec. V request stream into bounded-
//!                 memory sketches (count-min + top-k + HLL) instead of
//!                 materializing the per-request event vector
//! --trace FILE    write a deterministic sim-clock Chrome trace_event
//!                 JSON (open in chrome://tracing or ui.perfetto.dev)
//! --log LEVEL     stderr event stream: off (default), progress, debug
//! --quiet         alias for --log off
//! --metrics-format FORMAT
//!                 json (default): results/bench_stages.json only;
//!                 prom: additionally render the run's stage metrics as
//!                 Prometheus text exposition to
//!                 results/stage_metrics.prom
//! ```

use std::path::Path;
use std::process::ExitCode;

use hs_landscape::obs;
use hs_landscape::pipeline::{ExecMode, PipelineTimings, StageId};
use hs_landscape::{report, RunOptions, Study, StudyConfig};

struct Args {
    command: String,
    scale: f64,
    seed: u64,
    faults: String,
    threads: usize,
    streaming: bool,
    trace: Option<String>,
    log: obs::LogLevel,
    prom_metrics: bool,
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut scale = 0.1f64;
    let mut seed = 0x2013_0204u64;
    let mut faults = "none".to_owned();
    let mut threads = default_threads();
    let mut streaming = false;
    let mut trace = None;
    let mut log = obs::LogLevel::Off;
    let mut prom_metrics = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value".to_owned())?;
                scale = v.parse().map_err(|_| format!("bad scale {v:?}"))?;
                if !(scale > 0.0 && scale <= 1.0) {
                    return Err("scale must be in (0, 1]".to_owned());
                }
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value".to_owned())?;
                seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--faults" => {
                faults = args.next().ok_or("--faults needs a profile".to_owned())?;
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value".to_owned())?;
                threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
                if threads == 0 {
                    return Err("--threads must be at least 1".to_owned());
                }
            }
            "--streaming" => streaming = true,
            "--trace" => {
                trace = Some(args.next().ok_or("--trace needs a file path".to_owned())?);
            }
            "--log" => {
                let v = args.next().ok_or("--log needs a level".to_owned())?;
                log = obs::LogLevel::parse(&v)
                    .ok_or_else(|| format!("bad log level {v:?} (off|progress|debug)"))?;
            }
            "--quiet" => log = obs::LogLevel::Off,
            "--metrics-format" => {
                let v = args
                    .next()
                    .ok_or("--metrics-format needs a value".to_owned())?;
                prom_metrics = match v.as_str() {
                    "json" => false,
                    "prom" => true,
                    other => return Err(format!("bad metrics format {other:?} (json|prom)")),
                };
            }
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(Args {
        command,
        scale,
        seed,
        faults,
        threads,
        streaming,
        trace,
        log,
        prom_metrics,
    })
}

fn usage() -> String {
    "usage: landscape <study|fig1|table1|fig2|table2|fig3|certs|sec5|tracking|stages> \
     [--scale S] [--seed N] [--faults none|adversarial] [--threads N] [--streaming] \
     [--trace FILE] [--log off|progress|debug] [--quiet] [--metrics-format json|prom]"
        .to_owned()
}

fn study_config(args: &Args) -> Result<StudyConfig, String> {
    let mut cfg = StudyConfig {
        seed: args.seed,
        scale: args.scale,
        relays: ((1_400.0 * args.scale) as usize).clamp(150, 1_400),
        harvest: hs_landscape::hs_harvest::HarvestConfig {
            fleet: hs_landscape::hs_harvest::FleetConfig {
                ips: ((58.0 * args.scale) as u32).max(8),
                relays_per_ip: 24,
                bandwidth: 400,
            },
            warmup_hours: 26,
            rotation_hours: 2,
        },
        scan_days: 7,
        traffic_clients: ((500.0 * args.scale) as usize).max(60),
        run_tracking: false,
        streaming: args
            .streaming
            .then(hs_landscape::hs_popularity::SketchConfig::default),
        ..StudyConfig::default()
    };
    cfg.apply_fault_profile(&args.faults)?;
    Ok(cfg)
}

/// The stages each command needs; `None` means the full study.
fn command_stages(command: &str) -> Option<Vec<StageId>> {
    match command {
        "study" => None,
        "fig1" => Some(vec![StageId::PortScan]),
        "table1" | "fig2" => Some(vec![StageId::Crawl]),
        "table2" | "sec5" => Some(vec![StageId::Popularity]),
        "fig3" => Some(vec![StageId::Geomap]),
        "certs" => Some(vec![StageId::Certs]),
        "tracking" => Some(vec![StageId::Tracking]),
        "stages" => Some(vec![
            StageId::Geomap,
            StageId::Certs,
            StageId::Crawl,
            StageId::Popularity,
        ]),
        _ => unreachable!("command validated in main"),
    }
}

/// Writes the machine-readable per-stage record alongside the run's
/// parameters.
fn write_stage_json(args: &Args, timings: &PipelineTimings) {
    let path = Path::new("results").join("bench_stages.json");
    let body = format!(
        "{{\n\"command\": \"{}\", \"scale\": {}, \"seed\": {}, \"faults\": \"{}\",\n\"timings\": {}}}\n",
        args.command,
        args.scale,
        args.seed,
        args.faults,
        timings.to_json().trim_end()
    );
    let written = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write(&path, body))
        .is_ok();
    if written {
        eprintln!("[landscape] stage timings written to {}", path.display());
    } else {
        eprintln!("[landscape] warning: could not write {}", path.display());
    }
}

/// Renders the run's stage metrics as Prometheus text exposition
/// (`--metrics-format prom`). Wall-clock durations make this file
/// run-dependent, so it is never diffed against a committed baseline —
/// use `results/bench_stages.json` for the byte-stable record.
fn write_prom_metrics(timings: &PipelineTimings) {
    let path = Path::new("results").join("stage_metrics.prom");
    let written = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write(&path, timings.to_prom()))
        .is_ok();
    if written {
        eprintln!(
            "[landscape] prometheus metrics written to {}",
            path.display()
        );
    } else {
        eprintln!("[landscape] warning: could not write {}", path.display());
    }
}

/// Exports the run's trace as deterministic sim-clock Chrome
/// `trace_event` JSON, validating the emitted bytes first.
fn write_trace(path: &str, trace: &obs::Trace) -> Result<(), String> {
    let json = trace.to_chrome_json(obs::TraceClock::Sim);
    obs::trace::validate_json(&json).map_err(|e| format!("internal: trace JSON invalid: {e}"))?;
    std::fs::write(path, json).map_err(|e| format!("could not write {path}: {e}"))?;
    eprintln!(
        "[landscape] sim-clock trace written to {path} \
         (open in chrome://tracing or https://ui.perfetto.dev)"
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let opts = RunOptions {
        trace: args.trace.is_some(),
        log: obs::Logger::new(args.log),
    };
    const COMMANDS: &[&str] = &[
        "study", "fig1", "table1", "fig2", "table2", "fig3", "certs", "sec5", "tracking", "stages",
    ];
    if !COMMANDS.contains(&args.command.as_str()) {
        eprintln!("unknown command {:?}\n{}", args.command, usage());
        return ExitCode::FAILURE;
    }

    let study = match study_config(&args) {
        Ok(cfg) => Study::new(cfg),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(targets) = command_stages(&args.command) else {
        // The full study: every stage, parallel analyses. A degraded
        // stage leaves its sections out of the report; the run itself
        // still succeeds with whatever completed.
        let mode = ExecMode::parallel().with_wave_threads(args.threads);
        let results = study.run_mode(mode, opts);
        if let Some(scan) = &results.scan {
            println!("{}", report::render_fig1(scan));
        }
        if let Some(certs) = &results.certs {
            println!("{}", report::render_certs(certs));
        }
        if let Some(crawl) = &results.crawl {
            println!("{}", report::render_table1(crawl));
            println!("{}", report::render_funnel_and_languages(crawl));
            println!("{}", report::render_fig2(crawl));
        }
        if let Some(ranking) = &results.ranking {
            println!("{}", report::render_table2(ranking, 30));
        }
        if let (Some(resolution), Some(share)) =
            (&results.resolution, results.requested_published_share)
        {
            println!("{}", report::render_sec5(resolution, share));
        }
        if let Some(sketch) = &results.sketch {
            println!("{}", report::render_sketch(sketch));
        }
        if let Some(deanon) = &results.deanon {
            println!("{}", report::render_fig3(deanon));
        }
        if !results.is_complete() {
            println!("{}", report::render_degraded(&results.stages));
        }
        eprintln!("{}", report::render_stage_timings(&results.stages));
        write_stage_json(&args, &results.stages);
        if args.prom_metrics {
            write_prom_metrics(&results.stages);
        }
        if let (Some(path), Some(trace)) = (&args.trace, &results.trace) {
            if let Err(e) = write_trace(path, trace) {
                eprintln!("[landscape] {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    };

    let mode = ExecMode::parallel().with_wave_threads(args.threads);
    let run = study.run_stages_mode(&targets, mode, opts);
    let artifacts = &run.artifacts;
    match args.command.as_str() {
        "fig1" => println!("{}", report::render_fig1(artifacts.scan())),
        "table1" => println!("{}", report::render_table1(artifacts.crawl())),
        "fig2" => {
            println!("{}", report::render_funnel_and_languages(artifacts.crawl()));
            println!("{}", report::render_fig2(artifacts.crawl()));
        }
        "table2" => println!(
            "{}",
            report::render_table2(&artifacts.popularity().ranking, 30)
        ),
        "fig3" => println!("{}", report::render_fig3(artifacts.deanon())),
        "certs" => println!("{}", report::render_certs(artifacts.certs())),
        "sec5" => {
            let pop = artifacts.popularity();
            println!(
                "{}",
                report::render_sec5(&pop.resolution, pop.requested_published_share)
            );
            if let Some(sketch) = &pop.sketch {
                println!("{}", report::render_sketch(sketch));
            }
        }
        "tracking" => println!("{}", report::render_tracking(artifacts.tracking())),
        "stages" => {}
        other => unreachable!("command {other:?} validated above"),
    }
    eprintln!("{}", report::render_stage_timings(&run.timings));
    write_stage_json(&args, &run.timings);
    if args.prom_metrics {
        write_prom_metrics(&run.timings);
    }
    if let (Some(path), Some(trace)) = (&args.trace, &run.trace) {
        if let Err(e) = write_trace(path, trace) {
            eprintln!("[landscape] {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

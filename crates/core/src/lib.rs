//! `hs-landscape` — an end-to-end reproduction of *"Content and
//! popularity analysis of Tor hidden services"* (Biryukov, Pustogarov,
//! Thill, Weinmann — ICDCS 2014) against a simulated 2013 Tor network.
//!
//! The crate re-exports every subsystem and provides the [`Study`]
//! pipeline that runs the whole paper in order:
//!
//! 1. **Harvest** (Sec. II): the shadow-relay trawling attack collects
//!    onion addresses and logs client descriptor requests
//!    ([`hs_harvest`]).
//! 2. **Port scan** (Sec. III, Fig. 1): multi-day probe of every
//!    harvested address ([`hs_portscan`]), plus the HTTPS certificate
//!    survey ([`hs_content::certs`]).
//! 3. **Content analysis** (Sec. IV, Table I, Fig. 2): crawl funnel,
//!    language detection, topic classification ([`hs_content`]).
//! 4. **Popularity** (Sec. V, Table II): descriptor-ID resolution and
//!    ranking ([`hs_popularity`]).
//! 5. **Client deanonymisation** (Sec. VI, Fig. 3): traffic-signature
//!    attack and geographic mapping ([`hs_deanon`]).
//! 6. **Tracking detection** (Sec. VII): consensus-history analysis of
//!    Silk Road ([`hs_tracking`]).
//!
//! # Examples
//!
//! ```no_run
//! use hs_landscape::{report, Study, StudyConfig};
//!
//! let study = Study::new(StudyConfig::test_scale());
//! let results = study.run();
//! if let Some(scan) = &results.scan {
//!     println!("{}", report::render_fig1(scan));
//! }
//! if let Some(ranking) = &results.ranking {
//!     println!("{}", report::render_table2(ranking, 30));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod pipeline;
pub mod report;
pub mod study;

pub use pipeline::{
    CacheCounters, CancelToken, ExecMode, Halt, MemoryCache, PipelineRun, PipelineTimings,
    RunControl, RunOptions, StageCache, StageId, StagePayload, StageTiming,
};
pub use study::{DeanonReport, Study, StudyConfig, StudyReport, TrackingReport};

// Re-export the subsystem crates under one roof.
pub use hs_content;
pub use hs_deanon;
pub use hs_harvest;
pub use hs_popularity;
pub use hs_portscan;
pub use hs_tracking;
pub use hs_world;
pub use obs;
pub use onion_crypto;
pub use tor_sim;
pub use wave;

#!/bin/sh
# Regenerates every paper artifact at the given scale and stores the
# outputs under results/ (used to fill EXPERIMENTS.md).
#
#   sh scripts_run_experiments.sh          regenerate results/*.txt
#   sh scripts_run_experiments.sh verify   formatting + lint gate only
set -e
if [ "${1:-}" = "verify" ]; then
  echo "== cargo fmt --check"
  cargo fmt --check
  echo "== cargo clippy --workspace -- -D warnings"
  cargo clippy --workspace -- -D warnings
  echo "verify ok"
  exit 0
fi
SCALE="${HS_SCALE:-0.25}"
export HS_SCALE="$SCALE"
mkdir -p results
for bin in fig1_ports table1_http fig2_topics table2_popularity fig3_geomap \
           sec3_certs sec5_stats harvest_coverage; do
  echo "== $bin (scale $SCALE)"
  cargo run --release -q -p hs-bench --bin "$bin" > "results/$bin.txt" 2>"results/$bin.log" || true
done
echo "== sec7_tracking"
cargo run --release -q -p hs-bench --bin sec7_tracking > results/sec7_tracking.txt 2>results/sec7_tracking.log || true
echo "== deanon_rate"
cargo run --release -q -p hs-bench --bin deanon_rate > results/deanon_rate.txt 2>results/deanon_rate.log || true
echo done

#!/bin/sh
# Regenerates every paper artifact at the given scale and stores the
# outputs under results/ (used to fill EXPERIMENTS.md).
#
#   sh scripts_run_experiments.sh          regenerate results/*.txt
#   sh scripts_run_experiments.sh verify   formatting + lint gate + par + scale1 + sketch
#   sh scripts_run_experiments.sh bench    stage-timing run + baseline diff
#   sh scripts_run_experiments.sh scale1   paper-scale setup+harvest gate
#   sh scripts_run_experiments.sh sketch   exact-vs-streaming sketch differential gate
#   sh scripts_run_experiments.sh faults   adversarial fault-injection run
#   sh scripts_run_experiments.sh trace    sim-clock trace run + baseline diff
#   sh scripts_run_experiments.sh par      1-vs-N-thread byte-identity + speedup
#   sh scripts_run_experiments.sh daemon   resident landscaped session + baseline diff
#   sh scripts_run_experiments.sh telemetry  METRICS PROM / TRACE session + baseline diff
#   sh scripts_run_experiments.sh pooled   worker-pool session + ticker progression gate
set -e
if [ "${1:-}" = "verify" ]; then
  echo "== cargo fmt --check"
  cargo fmt --check
  echo "== cargo clippy --workspace -- -D warnings"
  cargo clippy --workspace -- -D warnings
  sh "$0" par
  sh "$0" scale1
  sh "$0" sketch
  sh "$0" daemon
  sh "$0" telemetry
  sh "$0" pooled
  echo "verify ok"
  exit 0
fi
if [ "${1:-}" = "pooled" ]; then
  # The worker-pool gate, two parts.
  #
  # Part 1: boot landscaped with an explicit pool shape (--workers 3)
  # and drive the committed pooled session — GET ... FULL projections,
  # a METRICS PROM scrape whose pool families are deterministic over a
  # single scripting connection (one worker busy, nothing queued) —
  # then diff the wall-masked transcript against the committed
  # baseline.
  BASELINE=results/pooled_baseline.txt
  SESSION=scripts_pooled_session.txt
  [ -f "$BASELINE" ] || { echo "missing $BASELINE"; exit 1; }
  [ -f "$SESSION" ] || { echo "missing $SESSION"; exit 1; }
  echo "== landscaped serve --seed 7 --workers 3 (pooled session)"
  cargo build --release -q -p hs-serve
  PORT_FILE=$(mktemp)
  : > "$PORT_FILE"
  target/release/landscaped serve --addr 127.0.0.1:0 --seed 7 --threads 2 \
    --workers 3 --port-file "$PORT_FILE" 2> results/pooled_serve.log &
  DAEMON_PID=$!
  i=0
  while [ ! -s "$PORT_FILE" ] && [ "$i" -lt 200 ]; do
    sleep 0.1
    i=$((i + 1))
  done
  if [ ! -s "$PORT_FILE" ]; then
    kill "$DAEMON_PID" 2>/dev/null || true
    rm -f "$PORT_FILE"
    echo "FAIL: daemon never reported its port (see results/pooled_serve.log)"
    exit 1
  fi
  PORT=$(cat "$PORT_FILE")
  rm -f "$PORT_FILE"
  if ! target/release/landscaped script "127.0.0.1:$PORT" \
      < "$SESSION" > results/pooled_session_raw.txt; then
    kill "$DAEMON_PID" 2>/dev/null || true
    echo "FAIL: pooled session aborted (see results/pooled_session_raw.txt)"
    exit 1
  fi
  wait "$DAEMON_PID" || true
  # Same normalization as the telemetry gate: wall-clock families and
  # microsecond intervals are masked, everything else diffs
  # byte-for-byte.
  sed -E \
    -e 's/^(epoch_age_ms|uptime_ms)=[0-9]+$/\1=MASKED/' \
    -e '/^landscaped_[a-z_]*(_us|_seconds)/s/ [0-9eE.+-]+$/ MASKED/' \
    -e 's/[0-9]+us/MASKEDus/g' \
    results/pooled_session_raw.txt > results/pooled_session.txt
  if ! diff -u "$BASELINE" results/pooled_session.txt; then
    echo "FAIL: pooled transcript drifted from $BASELINE"
    exit 1
  fi
  echo "pooled transcript matches baseline"
  # Part 2: the background ticker. Boot a second daemon advancing 6
  # sim-hours every 100 wall-ms, poll STATUS until it has published a
  # few epochs, and check the epoch arithmetic from one consistent
  # reply: the ticker reuses the TICK path, so
  # sim_time == base + epoch * 6h must hold exactly.
  echo "== landscaped serve --tick-every 6/100 (ticker progression)"
  PORT_FILE=$(mktemp)
  : > "$PORT_FILE"
  target/release/landscaped serve --addr 127.0.0.1:0 --seed 7 --threads 2 \
    --tick-every 6/100 --port-file "$PORT_FILE" 2> results/ticker_serve.log &
  DAEMON_PID=$!
  i=0
  while [ ! -s "$PORT_FILE" ] && [ "$i" -lt 200 ]; do
    sleep 0.1
    i=$((i + 1))
  done
  if [ ! -s "$PORT_FILE" ]; then
    kill "$DAEMON_PID" 2>/dev/null || true
    rm -f "$PORT_FILE"
    echo "FAIL: ticker daemon never reported its port (see results/ticker_serve.log)"
    exit 1
  fi
  PORT=$(cat "$PORT_FILE")
  rm -f "$PORT_FILE"
  EPOCH=0
  i=0
  while [ "$i" -lt 100 ]; do
    printf 'STATUS\n' | target/release/landscaped script "127.0.0.1:$PORT" \
      > results/ticker_status.txt
    EPOCH=$(sed -n 's/^epoch=//p' results/ticker_status.txt)
    [ "${EPOCH:-0}" -ge 3 ] && break
    sleep 0.1
    i=$((i + 1))
  done
  SIM_TIME=$(sed -n 's/^sim_time=//p' results/ticker_status.txt)
  printf 'SHUTDOWN\n' | target/release/landscaped script "127.0.0.1:$PORT" > /dev/null
  wait "$DAEMON_PID" || true
  if [ "${EPOCH:-0}" -lt 3 ]; then
    echo "FAIL: ticker never reached epoch 3 (see results/ticker_status.txt)"
    exit 1
  fi
  WANT=$((1359680400 + EPOCH * 21600))
  if [ "$SIM_TIME" != "$WANT" ]; then
    echo "FAIL: ticker epoch $EPOCH reports sim_time=$SIM_TIME, want $WANT"
    exit 1
  fi
  echo "ticker reached epoch $EPOCH with sim_time=$SIM_TIME (exact)"
  echo "pooled ok"
  exit 0
fi
if [ "${1:-}" = "telemetry" ]; then
  # The telemetry-plane gate: boot landscaped with debug logging and a
  # cache byte budget, drive the committed telemetry session (STATUS
  # FULL, METRICS PROM, TRACE verbs), fetch the flight recorder's
  # Chrome-trace dump through `landscaped dump-trace` (which validates
  # the JSON), and diff the *normalized* transcript: wall-clock values
  # are masked, so the diff pins the exposition's line set and every
  # deterministic counter while letting latencies float.
  BASELINE=results/telemetry_baseline.txt
  SESSION=scripts_telemetry_session.txt
  [ -f "$BASELINE" ] || { echo "missing $BASELINE"; exit 1; }
  [ -f "$SESSION" ] || { echo "missing $SESSION"; exit 1; }
  echo "== landscaped serve --seed 7 --log debug (telemetry session)"
  cargo build --release -q -p hs-serve
  PORT_FILE=$(mktemp)
  : > "$PORT_FILE"
  target/release/landscaped serve --addr 127.0.0.1:0 --seed 7 --threads 2 \
    --cache-bytes 67108864 --pool-metrics off --log debug --port-file "$PORT_FILE" \
    2> results/telemetry_serve.log &
  DAEMON_PID=$!
  i=0
  while [ ! -s "$PORT_FILE" ] && [ "$i" -lt 200 ]; do
    sleep 0.1
    i=$((i + 1))
  done
  if [ ! -s "$PORT_FILE" ]; then
    kill "$DAEMON_PID" 2>/dev/null || true
    rm -f "$PORT_FILE"
    echo "FAIL: daemon never reported its port (see results/telemetry_serve.log)"
    exit 1
  fi
  PORT=$(cat "$PORT_FILE")
  rm -f "$PORT_FILE"
  if ! target/release/landscaped script "127.0.0.1:$PORT" \
      < "$SESSION" > results/telemetry_session_raw.txt; then
    kill "$DAEMON_PID" 2>/dev/null || true
    echo "FAIL: telemetry session aborted (see results/telemetry_session_raw.txt)"
    exit 1
  fi
  # dump-trace validates the Chrome trace_event JSON itself and exits
  # nonzero on a malformed document.
  if ! target/release/landscaped dump-trace "127.0.0.1:$PORT" results/telemetry_trace.json; then
    kill "$DAEMON_PID" 2>/dev/null || true
    echo "FAIL: TRACE DUMP invalid (see results/telemetry_trace.json)"
    exit 1
  fi
  printf 'SHUTDOWN\n' | target/release/landscaped script "127.0.0.1:$PORT" > /dev/null
  wait "$DAEMON_PID" || true
  grep -q 'RUN_UNTIL' results/telemetry_trace.json \
    || { echo "FAIL: flight-recorder dump holds no query lanes"; exit 1; }
  # Normalize wall-clock values: STATUS FULL ages, Prometheus series
  # whose name carries a wall unit (_us histograms, _seconds gauges),
  # and the span-tree microsecond intervals. Everything else — the
  # line set, counters, hashes, ids — must match byte-for-byte.
  sed -E \
    -e 's/^(epoch_age_ms|uptime_ms)=[0-9]+$/\1=MASKED/' \
    -e '/^landscaped_[a-z_]*(_us|_seconds)/s/ [0-9eE.+-]+$/ MASKED/' \
    -e 's/[0-9]+us/MASKEDus/g' \
    results/telemetry_session_raw.txt > results/telemetry_session.txt
  if ! diff -u "$BASELINE" results/telemetry_session.txt; then
    echo "FAIL: telemetry transcript drifted from $BASELINE"
    exit 1
  fi
  echo "telemetry transcript matches baseline"
  grep -q 'query id=3 outcome=ok' results/telemetry_serve.log \
    || { echo "FAIL: debug log missing per-query lines"; exit 1; }
  echo "telemetry ok"
  exit 0
fi
if [ "${1:-}" = "daemon" ]; then
  # The resident-daemon gate: boot landscaped on an OS-assigned port,
  # drive the committed multi-command session through the scripting
  # client, and diff the transcript byte-for-byte — every reply field
  # (world hashes, epoch ids, cache counters, halt reasons) is a pure
  # function of the seed, so any drift is a determinism regression in
  # the daemon's query, epoch, or cache paths.
  BASELINE=results/daemon_baseline.txt
  SESSION=scripts_daemon_session.txt
  [ -f "$BASELINE" ] || { echo "missing $BASELINE"; exit 1; }
  [ -f "$SESSION" ] || { echo "missing $SESSION"; exit 1; }
  echo "== landscaped serve --seed 7 (scripted session)"
  cargo build --release -q -p hs-serve
  PORT_FILE=$(mktemp)
  : > "$PORT_FILE"
  target/release/landscaped serve --addr 127.0.0.1:0 --seed 7 --threads 2 \
    --port-file "$PORT_FILE" 2> results/daemon_serve.log &
  DAEMON_PID=$!
  i=0
  while [ ! -s "$PORT_FILE" ] && [ "$i" -lt 200 ]; do
    sleep 0.1
    i=$((i + 1))
  done
  if [ ! -s "$PORT_FILE" ]; then
    kill "$DAEMON_PID" 2>/dev/null || true
    rm -f "$PORT_FILE"
    echo "FAIL: daemon never reported its port (see results/daemon_serve.log)"
    exit 1
  fi
  PORT=$(cat "$PORT_FILE")
  rm -f "$PORT_FILE"
  if ! target/release/landscaped script "127.0.0.1:$PORT" \
      < "$SESSION" > results/daemon_session.txt; then
    kill "$DAEMON_PID" 2>/dev/null || true
    echo "FAIL: scripted session aborted (see results/daemon_session.txt)"
    exit 1
  fi
  # The session ends with SHUTDOWN, so the daemon exits on its own.
  wait "$DAEMON_PID" || true
  if ! diff -u "$BASELINE" results/daemon_session.txt; then
    echo "FAIL: daemon transcript drifted from $BASELINE (determinism regression)"
    exit 1
  fi
  echo "daemon transcript matches baseline"
  echo "daemon ok"
  exit 0
fi
if [ "${1:-}" = "sketch" ]; then
  # The streaming-sketch gate: the bench binary asserts the streaming
  # popularity path reproduces the exact Table II top-20 at scale 0.03
  # and measures synthetic sketch ingest; this wrapper then diffs the
  # deterministic fields against the committed baseline and enforces
  # its error and throughput budgets.
  BASELINE=results/bench_sketch_baseline.json
  CURRENT=results/bench_sketch.json
  [ -f "$BASELINE" ] || { echo "missing $BASELINE"; exit 1; }
  echo "== bench_sketch (exact-vs-streaming differential)"
  cargo run --release -q -p hs-bench --bin bench_sketch \
    > results/bench_sketch.txt 2> results/bench_sketch.log
  strip_volatile() {
    grep -v 'events_per_sec\|budget' "$1"
  }
  strip_volatile "$BASELINE" > /tmp/sketch_baseline.$$
  strip_volatile "$CURRENT" > /tmp/sketch_current.$$
  if ! diff -u /tmp/sketch_baseline.$$ /tmp/sketch_current.$$; then
    rm -f /tmp/sketch_baseline.$$ /tmp/sketch_current.$$
    echo "FAIL: sketch differential drifted from $BASELINE (determinism regression)"
    exit 1
  fi
  rm -f /tmp/sketch_baseline.$$ /tmp/sketch_current.$$
  echo "sketch differential matches baseline"
  grep -q '"top20_rank_match": 1' "$CURRENT" \
    || { echo "FAIL: streaming top-20 diverged from the exact ranking"; exit 1; }
  grep -q '"cms_overestimate_ok": 1' "$CURRENT" \
    || { echo "FAIL: count-min sketch underestimated a true count"; exit 1; }
  ERR_PCT=$(awk -F': ' '/"hll_error_pct"/ { gsub(/[,}]/, "", $2); print $2 }' "$CURRENT")
  ERR_BUDGET=$(awk -F': ' '/"hll_error_budget_pct"/ { gsub(/[,}]/, "", $2); print $2 }' "$BASELINE")
  echo "hll error: ${ERR_PCT}% (budget ${ERR_BUDGET}%)"
  awk -v c="$ERR_PCT" -v b="$ERR_BUDGET" 'BEGIN { exit !(c > b) }' \
    && { echo "FAIL: hll error ${ERR_PCT}% exceeds committed budget ${ERR_BUDGET}%"; exit 1; }
  EPS=$(awk -F': ' '/"events_per_sec"/ { gsub(/[,}]/, "", $2); print $2 }' "$CURRENT")
  MIN_EPS=$(awk -F': ' '/"min_events_per_sec"/ { gsub(/[,}]/, "", $2); print $2 }' "$BASELINE")
  echo "ingest throughput: ${EPS} events/s (floor ${MIN_EPS})"
  awk -v c="$EPS" -v b="$MIN_EPS" 'BEGIN { exit !(c < b) }' \
    && { echo "FAIL: ingest ${EPS} events/s below committed floor ${MIN_EPS}"; exit 1; }
  cat results/bench_sketch.txt
  echo "sketch ok"
  exit 0
fi
if [ "${1:-}" = "scale1" ]; then
  # The paper-scale gate: run setup+harvest at scale 1.0 at 1 and N
  # wave threads (the binary itself asserts cross-thread counter
  # identity), then diff the deterministic counters against the
  # committed baseline and enforce its wall-clock budget.
  BASELINE=results/bench_scale1_baseline.json
  CURRENT=results/bench_scale1.json
  [ -f "$BASELINE" ] || { echo "missing $BASELINE"; exit 1; }
  echo "== bench_scale1 (paper-scale setup+harvest)"
  cargo run --release -q -p hs-bench --bin bench_scale1 \
    > results/bench_scale1.txt 2> results/bench_scale1.log
  strip_volatile() {
    grep -v 'wall_ms\|threads_n\|speedup\|budget_ms' "$1"
  }
  strip_volatile "$BASELINE" > /tmp/scale1_baseline.$$
  strip_volatile "$CURRENT" > /tmp/scale1_current.$$
  if ! diff -u /tmp/scale1_baseline.$$ /tmp/scale1_current.$$; then
    rm -f /tmp/scale1_baseline.$$ /tmp/scale1_current.$$
    echo "FAIL: scale-1.0 counters drifted from $BASELINE (determinism regression)"
    exit 1
  fi
  rm -f /tmp/scale1_baseline.$$ /tmp/scale1_current.$$
  echo "scale-1.0 counters match baseline"
  BUDGET_MS=$(awk -F': ' '/"budget_ms"/ { gsub(/[,}]/, "", $2); print $2 }' "$BASELINE")
  CUR_MS=$(awk -F': ' '/"wall_ms_tn"/ { gsub(/[,}]/, "", $2); print $2 }' "$CURRENT")
  echo "threaded wall: ${CUR_MS}ms (budget ${BUDGET_MS}ms)"
  awk -v c="$CUR_MS" -v b="$BUDGET_MS" 'BEGIN { exit !(c > b) }' \
    && { echo "FAIL: scale-1.0 wall ${CUR_MS}ms exceeds committed budget ${BUDGET_MS}ms"; exit 1; }
  cat results/bench_scale1.txt
  echo "scale1 ok"
  exit 0
fi
if [ "${1:-}" = "par" ]; then
  # Prove the measurement-wave parallelism changes no output byte: the
  # full study report at 1 worker thread must equal both the committed
  # baseline and a >=4-thread rerun, while the per-stage wall clocks
  # show the threads actually bought time on the wave-heavy stages.
  BASELINE=results/par_study_baseline.txt
  [ -f "$BASELINE" ] || { echo "missing $BASELINE"; exit 1; }
  PAR_THREADS="${HS_PAR_THREADS:-4}"
  echo "== landscape study --scale 0.03 --seed 7 --threads 1"
  cargo run --release -q -p hs-landscape --bin landscape -- \
    study --scale 0.03 --seed 7 --threads 1 \
    > results/par_study_t1.txt 2> results/par_study_t1.log
  cp results/bench_stages.json results/par_stages_t1.json
  if ! diff -u "$BASELINE" results/par_study_t1.txt; then
    echo "FAIL: 1-thread report drifted from $BASELINE (determinism regression)"
    exit 1
  fi
  echo "== landscape study --scale 0.03 --seed 7 --threads $PAR_THREADS"
  cargo run --release -q -p hs-landscape --bin landscape -- \
    study --scale 0.03 --seed 7 --threads "$PAR_THREADS" \
    > results/par_study_tn.txt 2> results/par_study_tn.log
  cp results/bench_stages.json results/par_stages_tn.json
  if ! diff -u "$BASELINE" results/par_study_tn.txt; then
    echo "FAIL: $PAR_THREADS-thread report differs from the 1-thread baseline"
    exit 1
  fi
  echo "reports byte-identical at 1 and $PAR_THREADS threads"
  # Wave-heavy wall-clock: harvest (traffic ticks) + port_scan (probe
  # wave). Informational — timings are machine-relative.
  wave_wall() {
    awk '/"stage": "(harvest|port_scan)"/ {
           if (match($0, /"wall_ms": [0-9.]+/))
             sum += substr($0, RSTART + 11, RLENGTH - 11)
         }
         END { printf "%.3f", sum }' "$1"
  }
  T1_MS=$(wave_wall results/par_stages_t1.json)
  TN_MS=$(wave_wall results/par_stages_tn.json)
  awk -v a="$T1_MS" -v b="$TN_MS" -v n="$PAR_THREADS" 'BEGIN {
    if (b > 0) printf "wave stages (harvest+port_scan): %.0fms @1 thread, %.0fms @%d threads (%.2fx)\n", a, b, n, a / b
  }'
  echo "par ok"
  exit 0
fi
if [ "${1:-}" = "bench" ]; then
  # Regenerate results/bench_stages.json at the benchmark config and
  # compare against the committed baseline: counters must match exactly
  # (any drift means the sim hot path lost determinism), wall-clock of
  # the three heavy sim stages only warns past a 20 % regression.
  BASELINE=results/bench_stages_baseline.json
  CURRENT=results/bench_stages.json
  [ -f "$BASELINE" ] || { echo "missing $BASELINE"; exit 1; }
  echo "== landscape study --scale 0.03 --seed 7"
  cargo run --release -q -p hs-landscape --bin landscape -- study --scale 0.03 --seed 7 --threads 2 \
    > results/bench_study.txt 2> results/bench_study.log
  # Strip the wall_ms field, leaving one canonical line per stage.
  strip_wall() {
    sed 's/"wall_ms": [0-9.]*, //' "$1" | grep '"stage"'
  }
  strip_wall "$BASELINE" > /tmp/bench_baseline_counters.$$
  strip_wall "$CURRENT" > /tmp/bench_current_counters.$$
  if ! diff -u /tmp/bench_baseline_counters.$$ /tmp/bench_current_counters.$$; then
    rm -f /tmp/bench_baseline_counters.$$ /tmp/bench_current_counters.$$
    echo "FAIL: stage counters drifted from $BASELINE (determinism regression)"
    exit 1
  fi
  rm -f /tmp/bench_baseline_counters.$$ /tmp/bench_current_counters.$$
  echo "counters match baseline"
  # Hot-stage wall-clock: warn (not fail — timings are machine-relative)
  # when harvest+deanon_window+port_scan exceed 1.2x the baseline sum.
  hot_wall() {
    awk '/"stage": "(harvest|deanon_window|port_scan)"/ {
           if (match($0, /"wall_ms": [0-9.]+/))
             sum += substr($0, RSTART + 11, RLENGTH - 11)
         }
         END { printf "%.3f", sum }' "$1"
  }
  BASE_MS=$(hot_wall "$BASELINE")
  CUR_MS=$(hot_wall "$CURRENT")
  echo "hot-stage wall: current ${CUR_MS}ms, baseline ${BASE_MS}ms"
  awk -v c="$CUR_MS" -v b="$BASE_MS" 'BEGIN {
    if (c > 1.2 * b)
      printf "WARN: hot stages regressed >20%% (%.0fms vs %.0fms baseline)\n", c, b
  }'
  echo "bench ok"
  exit 0
fi
if [ "${1:-}" = "faults" ]; then
  # Run the committed adversarial fault profile end to end. The run
  # must complete (exit 0) with a *partial* report — the injected certs
  # failure degrades that stage, the flaky geomap stage recovers on
  # retry — and the stage counters (faults fired, retries absorbed,
  # stages degraded) must match the committed baseline exactly: fault
  # injection is deterministic, so any drift is a regression.
  BASELINE=results/bench_stages_faults_baseline.json
  CURRENT=results/bench_stages.json
  [ -f "$BASELINE" ] || { echo "missing $BASELINE"; exit 1; }
  echo "== landscape study --scale 0.03 --seed 7 --faults adversarial"
  cargo run --release -q -p hs-landscape --bin landscape -- \
    study --scale 0.03 --seed 7 --threads 2 --faults adversarial \
    > results/faults_study.txt 2> results/faults_study.log
  grep -q "PARTIAL REPORT" results/faults_study.txt \
    || { echo "FAIL: adversarial run did not degrade into a partial report"; exit 1; }
  grep -q "^faults: " results/faults_study.log \
    || { echo "FAIL: no fault counter summary in the stage timings"; exit 1; }
  grep -q '"degraded": \[' "$CURRENT" \
    || { echo "FAIL: no degraded section in $CURRENT"; exit 1; }
  grep -Eq '"fetch_drops": [1-9]' "$CURRENT" \
    || { echo "FAIL: adversarial plan injected no fetch drops"; exit 1; }
  grep -Eq '"relay_crashes": [1-9]' "$CURRENT" \
    || { echo "FAIL: adversarial plan crashed no relays"; exit 1; }
  strip_wall() {
    sed 's/"wall_ms": [0-9.]*, //' "$1" | grep '"stage"'
  }
  strip_wall "$BASELINE" > /tmp/faults_baseline_counters.$$
  strip_wall "$CURRENT" > /tmp/faults_current_counters.$$
  if ! diff -u /tmp/faults_baseline_counters.$$ /tmp/faults_current_counters.$$; then
    rm -f /tmp/faults_baseline_counters.$$ /tmp/faults_current_counters.$$
    echo "FAIL: fault counters drifted from $BASELINE (determinism regression)"
    exit 1
  fi
  rm -f /tmp/faults_baseline_counters.$$ /tmp/faults_current_counters.$$
  echo "fault counters match baseline"
  echo "faults ok"
  exit 0
fi
if [ "${1:-}" = "trace" ]; then
  # Run the study with span tracing and check the deterministic
  # sim-clock Chrome trace export: the emitted JSON must be structurally
  # valid (balanced containers — a cheap load check without a JSON
  # tool dependency) and byte-identical to the committed baseline,
  # because the sim clock is a pure function of the seed and the plan.
  BASELINE=results/trace_baseline.json
  CURRENT=results/trace_study.json
  [ -f "$BASELINE" ] || { echo "missing $BASELINE"; exit 1; }
  echo "== landscape study --scale 0.03 --seed 7 --trace $CURRENT"
  cargo run --release -q -p hs-landscape --bin landscape -- \
    study --scale 0.03 --seed 7 --threads 2 --trace "$CURRENT" \
    > results/trace_study.txt 2> results/trace_study.log
  grep -q "sim-clock trace written" results/trace_study.log \
    || { echo "FAIL: trace export not reported"; exit 1; }
  [ -s "$CURRENT" ] || { echo "FAIL: empty trace at $CURRENT"; exit 1; }
  # Structural sanity: balanced braces/brackets, array-shaped file.
  OPEN_B=$(tr -cd '{' < "$CURRENT" | wc -c)
  CLOSE_B=$(tr -cd '}' < "$CURRENT" | wc -c)
  OPEN_A=$(tr -cd '[' < "$CURRENT" | wc -c)
  CLOSE_A=$(tr -cd ']' < "$CURRENT" | wc -c)
  { [ "$OPEN_B" = "$CLOSE_B" ] && [ "$OPEN_A" = "$CLOSE_A" ]; } \
    || { echo "FAIL: unbalanced JSON in $CURRENT"; exit 1; }
  head -c 1 "$CURRENT" | grep -q '\[' \
    || { echo "FAIL: $CURRENT is not a trace_event array"; exit 1; }
  if ! diff -u "$BASELINE" "$CURRENT"; then
    echo "FAIL: sim-clock trace drifted from $BASELINE (determinism regression)"
    exit 1
  fi
  echo "trace matches baseline ($(grep -c '"ph"' "$CURRENT") events)"
  echo "trace ok"
  exit 0
fi
SCALE="${HS_SCALE:-0.25}"
export HS_SCALE="$SCALE"
mkdir -p results
for bin in fig1_ports table1_http fig2_topics table2_popularity fig3_geomap \
           sec3_certs sec5_stats harvest_coverage; do
  echo "== $bin (scale $SCALE)"
  cargo run --release -q -p hs-bench --bin "$bin" > "results/$bin.txt" 2>"results/$bin.log" || true
done
echo "== sec7_tracking"
cargo run --release -q -p hs-bench --bin sec7_tracking > results/sec7_tracking.txt 2>results/sec7_tracking.log || true
echo "== deanon_rate"
cargo run --release -q -p hs-bench --bin deanon_rate > results/deanon_rate.txt 2>results/deanon_rate.log || true
echo done

//! Census of the Skynet botnet and the Goldnet command-and-control
//! infrastructure (Sec. III and Sec. V).
//!
//! ```sh
//! cargo run --release -p hs-landscape --example botnet_census
//! ```

use hs_landscape::hs_popularity::BotnetForensics;
use hs_landscape::hs_portscan::{ScanConfig, Scanner};
use hs_landscape::hs_world::{Role, World, WorldConfig};
use hs_landscape::tor_sim::clock::SimTime;
use hs_landscape::tor_sim::network::NetworkBuilder;

fn main() {
    let world = World::generate(WorldConfig {
        seed: 0xb07,
        scale: 0.1,
    });
    let mut net = NetworkBuilder::new()
        .relays(300)
        .seed(0xb07)
        .start(SimTime::from_ymd(2013, 2, 13))
        .build();
    world.register_all(&mut net);
    net.advance_hours(1);

    // Scan everything, count the 55080 oracle hits.
    let targets: Vec<_> = world.services().iter().map(|s| s.onion).collect();
    let report = Scanner::new(ScanConfig {
        days: 4,
        ..ScanConfig::default()
    })
    .run(&mut net, &world, &targets);

    println!(
        "Skynet census: {} infected machines detected via the abnormal \
         port-55080 reply (ground truth: {}).",
        report.skynet_count,
        world
            .services()
            .iter()
            .filter(|s| s.is_skynet_bot())
            .count()
    );

    // Goldnet: probe the C&C front ends and group them by the Apache
    // uptime leaked on their server-status pages.
    let goldnet: Vec<_> = world
        .services()
        .iter()
        .filter(|s| matches!(s.role, Role::GoldnetCc { .. }))
        .map(|s| s.onion)
        .collect();
    let forensics = BotnetForensics::probe(&world, goldnet.iter().copied());
    println!(
        "\nGoldnet: {} front-end onions -> {} physical servers (by Apache uptime):",
        forensics.frontends(),
        forensics.physical_servers()
    );
    for (uptime, onions) in &forensics.groups {
        println!("  uptime {uptime}s:");
        for onion in onions {
            println!("    {onion}");
        }
    }
}

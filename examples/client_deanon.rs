//! Sec. VI demo: opportunistic deanonymisation of hidden-service
//! clients via attacker HSDirs + attacker guards, with the Fig. 3
//! world map of caught clients.
//!
//! ```sh
//! cargo run --release -p hs-landscape --example client_deanon
//! ```

use hs_landscape::hs_deanon::{DeanonAttack, DeanonConfig, GeoMap};
use hs_landscape::hs_world::GeoDb;
use hs_landscape::onion_crypto::OnionAddress;
use hs_landscape::tor_sim::clock::SimTime;
use hs_landscape::tor_sim::network::{FetchOutcome, NetworkBuilder};

fn main() {
    let mut net = NetworkBuilder::new()
        .relays(400)
        .seed(0xdea)
        .start(SimTime::from_ymd(2013, 2, 1))
        .build();
    let target = OnionAddress::from_pubkey(b"popular botnet C&C frontend");
    net.register_service(target, true);
    net.advance_hours(1);

    let config = DeanonConfig::default();
    let mut attack = DeanonAttack::deploy(&mut net, target, &config);
    println!(
        "Attack deployed: {} guards, 6 tracker HSDirs, controls responsible set: {}",
        attack.guards().len(),
        attack.controls_responsible_set(&net)
    );
    println!(
        "Analytic per-fetch catch probability: {:.2}%",
        attack.expected_catch_rate(&net) * 100.0
    );

    // Simulate three days of client visits.
    let geo = GeoDb::new();
    let mut rng_seed = 1u64;
    let mut fetches = 0u64;
    for _day in 0..3 {
        attack.reposition(&mut net);
        for _ in 0..1_500 {
            rng_seed = rng_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ip = {
                use hs_landscape::tor_sim::relay::Ipv4;
                Ipv4::new(
                    (1 + (rng_seed >> 32) % 220) as u8,
                    (rng_seed >> 24) as u8,
                    (rng_seed >> 16) as u8,
                    1 + (rng_seed % 250) as u8,
                )
            };
            let client = net.add_client(ip);
            if net.client_fetch(client, target) == FetchOutcome::Found {
                fetches += 1;
            }
        }
        net.advance_hours(24);
    }

    let observations = net.take_guard_observations();
    let map = GeoMap::build(&geo, &observations);
    println!(
        "\n{fetches} successful fetches; {} deanonymised client IPs ({:.1}% catch rate)",
        map.total_clients(),
        100.0 * f64::from(map.total_clients()) / fetches.max(1) as f64
    );
    println!("\n{}", map.ascii_map());
    println!("\nTop countries:");
    for (code, name, count) in map.rows().iter().take(10) {
        println!("  {code} {name:<18} {count:>5}");
    }
}

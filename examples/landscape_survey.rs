//! Sec. IV demo: crawl the hidden-service web, apply the exclusion
//! funnel, detect languages and classify topics.
//!
//! ```sh
//! cargo run --release -p hs-landscape --example landscape_survey
//! ```

use hs_landscape::hs_content::{CertSurvey, Crawler};
use hs_landscape::hs_world::{service::SKYNET_PORT, World, WorldConfig};
use hs_landscape::onion_crypto::OnionAddress;

fn main() {
    let world = World::generate(WorldConfig {
        seed: 0x5c0,
        scale: 0.2,
    });

    // Perfect-coverage destination list (the scan's output at 100 %).
    let destinations: Vec<(OnionAddress, u16)> = world
        .services()
        .iter()
        .flat_map(|s| s.open_ports().into_iter().map(move |p| (s.onion, p)))
        .filter(|&(_, p)| p != SKYNET_PORT)
        .collect();
    println!("Crawling {} destinations…", destinations.len());

    let crawler = Crawler::new();
    let report = crawler.run(&world, &destinations);

    println!(
        "still open {} | connected {} | errors {} | short {} (ssh {}) | 443 dups {} | classified {}",
        report.still_open,
        report.connected,
        report.excluded_errors,
        report.excluded_short,
        report.ssh_banners,
        report.excluded_mirrors,
        report.classified.len()
    );

    println!("\nLanguages:");
    for (lang, count) in report.language_histogram().iter().take(8) {
        println!(
            "  {:<4} {:>6} ({:.1}%)",
            lang.code(),
            count,
            100.0 * f64::from(*count) / report.classified.len() as f64
        );
    }

    println!(
        "\nTopics ({} pages; {} TorHost defaults removed):",
        report.topic_classified_count(),
        report.torhost_count()
    );
    for (topic, count, pct) in report.fig2_rows() {
        let bar = "#".repeat(pct.round() as usize);
        println!("  {:<18} {count:>5} {pct:>5.1}% {bar}", topic.label());
    }

    let (lang_acc, topic_acc) = crawler.evaluate_against_truth(&world, &report);
    println!(
        "\nClassifier accuracy vs ground truth: language {:.1}%, topic {:.1}%",
        lang_acc * 100.0,
        topic_acc * 100.0
    );

    // Certificate survey over every HTTPS destination.
    let https: Vec<OnionAddress> = destinations
        .iter()
        .filter(|&&(_, p)| p == 443)
        .map(|&(o, _)| o)
        .collect();
    let certs = CertSurvey::run(&world, https);
    println!(
        "\nHTTPS certs: {} destinations | {} self-signed CN-mismatch ({} TorHost) | {} clearnet-DNS (deanonymising)",
        certs.https_destinations, certs.self_signed_mismatch, certs.torhost_cn, certs.clearnet_dns
    );
}

//! Quickstart: run a scaled-down version of the whole study and print
//! the headline artifacts.
//!
//! ```sh
//! cargo run --release -p hs-landscape --example quickstart
//! ```

use hs_landscape::{report, Study, StudyConfig};

fn main() {
    // ~5 % of paper scale: finishes in seconds, preserves every shape.
    let config = StudyConfig {
        scale: 0.05,
        relays: 300,
        harvest: hs_landscape::hs_harvest::HarvestConfig {
            fleet: hs_landscape::hs_harvest::FleetConfig {
                ips: 12,
                relays_per_ip: 12,
                bandwidth: 300,
            },
            warmup_hours: 26,
            rotation_hours: 2,
        },
        scan_days: 5,
        traffic_clients: 150,
        run_tracking: false,
        ..StudyConfig::default()
    };

    println!("Running the study at scale {} …\n", config.scale);
    let results = Study::new(config).run();

    println!(
        "Harvested {} onion addresses with {} relay instances over {} hours.\n",
        results.harvest.onion_count(),
        results.harvest.fleet_relays.len(),
        results.harvest.hours
    );
    println!("{}", report::render_fig1(&results.scan));
    println!("{}", report::render_table1(&results.crawl));
    println!("{}", report::render_fig2(&results.crawl));
    println!("{}", report::render_table2(&results.ranking, 15));
    println!(
        "{}",
        report::render_sec5(&results.resolution, results.requested_published_share)
    );
}

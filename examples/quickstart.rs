//! Quickstart: run a scaled-down version of the whole study and print
//! the headline artifacts.
//!
//! ```sh
//! cargo run --release -p hs-landscape --example quickstart
//! ```

use hs_landscape::{report, Study, StudyConfig};

fn main() {
    // ~5 % of paper scale: finishes in seconds, preserves every shape.
    let config = StudyConfig {
        scale: 0.05,
        relays: 300,
        harvest: hs_landscape::hs_harvest::HarvestConfig {
            fleet: hs_landscape::hs_harvest::FleetConfig {
                ips: 12,
                relays_per_ip: 12,
                bandwidth: 300,
            },
            warmup_hours: 26,
            rotation_hours: 2,
        },
        scan_days: 5,
        traffic_clients: 150,
        run_tracking: false,
        ..StudyConfig::default()
    };

    println!("Running the study at scale {} …\n", config.scale);
    let results = Study::new(config).run();

    // A fault-free run completes every stage; each report section is
    // an Option only so that fault-injected runs can degrade instead
    // of aborting (see `landscape study --faults adversarial`).
    assert!(results.is_complete(), "{:?}", results.degraded_stages());
    let harvest = results.harvest.as_ref().unwrap();
    println!(
        "Harvested {} onion addresses with {} relay instances over {} hours.\n",
        harvest.onion_count(),
        harvest.fleet_relays.len(),
        harvest.hours
    );
    println!("{}", report::render_fig1(results.scan.as_ref().unwrap()));
    println!("{}", report::render_table1(results.crawl.as_ref().unwrap()));
    println!("{}", report::render_fig2(results.crawl.as_ref().unwrap()));
    println!(
        "{}",
        report::render_table2(results.ranking.as_ref().unwrap(), 15)
    );
    println!(
        "{}",
        report::render_sec5(
            results.resolution.as_ref().unwrap(),
            results.requested_published_share.unwrap()
        )
    );
}

//! Sec. VII case study: detect tracking of Silk Road in a three-year
//! consensus archive with the paper's three campaigns injected.
//!
//! ```sh
//! cargo run --release -p hs-landscape --example silkroad_tracking
//! ```

use hs_landscape::hs_tracking::{
    scenario, ConsensusArchive, DetectorConfig, HistoryConfig, TrackingDetector,
};
use hs_landscape::tor_sim::clock::SimTime;

fn main() {
    println!("Generating 3-year consensus archive (2011-02-01 … 2013-10-31)…");
    let mut archive = ConsensusArchive::generate(&HistoryConfig::default());
    println!(
        "  {} days, HSDir ring {} → {}",
        archive.len(),
        archive.days()[5].hsdir_count(),
        archive.days().last().unwrap().hsdir_count()
    );

    println!("Injecting the three tracking campaigns…");
    scenario::inject_all(&mut archive, scenario::silkroad());

    let detector = TrackingDetector::new(DetectorConfig::default());
    for (label, start, end) in [
        ("Year 1 (Feb–Dec 2011)", (2011, 2, 1), (2011, 12, 31)),
        ("Year 2 (2012)", (2012, 1, 1), (2012, 12, 31)),
        ("Year 3 (Jan–Oct 2013)", (2013, 1, 1), (2013, 10, 31)),
    ] {
        let analysis = detector.analyse(
            &archive,
            scenario::silkroad(),
            SimTime::from_ymd(start.0, start.1, start.2),
            SimTime::from_ymd(end.0, end.1, end.2),
        );
        println!("\n{label}: mean ring size {:.0}", analysis.mean_hsdirs,);
        let trackers = analysis.trackers();
        if trackers.is_empty() {
            println!("  no clear indication of tracking");
        }
        for t in trackers.iter().take(6) {
            println!(
                "  TRACKER {} [{}] responsible {}x | max ratio {:.0} | fp switches {} ({} right before responsibility) | rules {:?}",
                t.key.ip,
                t.nicknames.join(","),
                t.responsible_days.len(),
                t.max_ratio,
                t.fingerprint_switches,
                t.switches_before_responsible,
                t.suspicions,
            );
        }
    }
    println!(
        "\nConclusion: fingerprint changes combined with small descriptor-ID \
         distance are the most reliable tracking tell — as the paper found."
    );
}

//! Pipeline-engine contracts: determinism, selective-run equivalence,
//! and parallel/sequential equality.
//!
//! Artifacts are compared through their `Debug` rendering — every
//! artifact type derives `Debug` over plain data, so equal renderings
//! mean equal values field for field. The few `HashMap`-valued fields
//! are rendered through [`sorted_map`] first, because identical maps
//! print in different iteration orders.

use std::collections::HashMap;
use std::fmt::Debug;

use hs_landscape::hs_harvest::HarvestOutcome;
use hs_landscape::hs_popularity::ResolutionReport;
use hs_landscape::obs::{self, TraceClock};
use hs_landscape::pipeline::{ExecMode, Pipeline, RunOptions, StageId};
use hs_landscape::{Study, StudyConfig, StudyReport};

fn config() -> StudyConfig {
    StudyConfig::test_scale()
}

/// Canonical (key-sorted) rendering of a hash map.
fn sorted_map<K: Ord + Debug, V: Debug>(map: &HashMap<K, V>) -> String {
    let mut entries: Vec<(&K, &V)> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    format!("{entries:?}")
}

fn harvest_fingerprint(h: &HarvestOutcome) -> String {
    // `slot_hours` is already a deterministic sorted view — no
    // canonicalisation needed.
    format!(
        "{:?}|{:?}|{:?}|{:?}|{}|{}",
        h.onions, h.requests, h.slot_hours, h.fleet_relays, h.waves, h.hours
    )
}

fn resolution_fingerprint(r: &ResolutionReport) -> String {
    format!(
        "{}|{}|{}|{}|{}|{}",
        r.total_requests,
        r.unique_desc_ids,
        r.resolved_desc_ids,
        r.resolved_onions,
        sorted_map(&r.requests_per_onion),
        r.unresolved_requests
    )
}

/// Everything measured, minus the wall-clock timings (which are never
/// equal across runs). Report sections are `Option`s (a degraded
/// stage leaves its section `None`); fingerprinting a complete run
/// unwraps them, so an unexpected degradation fails the test loudly.
fn fingerprint(r: &StudyReport) -> String {
    assert!(r.is_complete(), "degraded: {:?}", r.degraded_stages());
    format!(
        "{}|{:?}|{:?}|{:?}|{}|{:?}|{}|{:?}|{:?}|{:?}",
        harvest_fingerprint(r.harvest.as_ref().unwrap()),
        r.scan,
        r.certs,
        r.crawl,
        resolution_fingerprint(r.resolution.as_ref().unwrap()),
        r.ranking,
        sorted_map(&r.forensics.as_ref().unwrap().groups),
        r.requested_published_share,
        r.deanon,
        r.tracking,
    )
}

/// Like [`fingerprint`] but tolerant of degraded stages: sections a
/// faulted run left out render as `None` instead of panicking, so an
/// adversarial run can still be compared value for value.
fn fingerprint_partial(r: &StudyReport) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        r.harvest.as_ref().map(harvest_fingerprint),
        r.scan,
        r.certs,
        r.crawl,
        r.resolution.as_ref().map(resolution_fingerprint),
        r.ranking,
        r.forensics.as_ref().map(|f| sorted_map(&f.groups)),
        r.requested_published_share,
        r.deanon,
        r.tracking,
    )
}

/// Runs the full study at one measurement-wave thread count, returning
/// the artifact fingerprint and the deterministic sim-clock trace.
fn run_at_threads(cfg: &StudyConfig, threads: usize) -> (String, String) {
    let opts = RunOptions {
        trace: true,
        log: obs::Logger::off(),
    };
    let mode = ExecMode::parallel().with_wave_threads(threads);
    let report = Study::new(cfg.clone()).run_mode(mode, opts);
    let trace = report
        .trace
        .as_ref()
        .expect("traced run returns a trace")
        .to_chrome_json(TraceClock::Sim);
    (fingerprint_partial(&report), trace)
}

#[test]
fn wave_threads_change_no_artifact_byte() {
    let cfg = config();
    let (fp1, trace1) = run_at_threads(&cfg, 1);
    for threads in [2, 8] {
        let (fp, trace) = run_at_threads(&cfg, threads);
        assert_eq!(fp1, fp, "artifacts diverged at {threads} threads");
        assert_eq!(trace1, trace, "sim trace diverged at {threads} threads");
    }
    // Fault-free runs complete, so the strict fingerprint applies too.
    let report = Study::new(cfg).run_mode(
        ExecMode::parallel().with_wave_threads(8),
        RunOptions::default(),
    );
    assert_eq!(
        fingerprint_partial(&report),
        fp1,
        "untraced run diverged from traced run"
    );
    fingerprint(&report);
}

#[test]
fn wave_threads_change_no_artifact_byte_under_faults() {
    let mut cfg = config();
    cfg.apply_fault_profile("adversarial").unwrap();
    let (fp1, trace1) = run_at_threads(&cfg, 1);
    for threads in [2, 8] {
        let (fp, trace) = run_at_threads(&cfg, threads);
        assert_eq!(
            fp1, fp,
            "adversarial artifacts diverged at {threads} threads"
        );
        assert_eq!(
            trace1, trace,
            "adversarial trace diverged at {threads} threads"
        );
    }
}

#[test]
fn same_seed_same_artifacts() {
    let a = Study::new(config()).run();
    let b = Study::new(config()).run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn parallel_equals_sequential() {
    let par = Study::new(config()).run();
    let seq = Study::new(config()).run_sequential();
    assert_eq!(fingerprint(&par), fingerprint(&seq));
    // Both executed the same stages.
    let ran = |r: &StudyReport| -> Vec<StageId> {
        let mut s: Vec<StageId> = r.stages.executed.iter().map(|t| t.stage).collect();
        s.sort();
        s
    };
    assert_eq!(ran(&par), ran(&seq));
}

#[test]
fn run_until_matches_full_run() {
    let study = Study::new(config());
    let full = study.run();
    // PortScan closure: setup → harvest → port_scan, nothing else.
    let scan_only = study.run_until(StageId::PortScan);
    assert_eq!(
        format!("{:?}", Some(scan_only.artifacts.scan())),
        format!("{:?}", full.scan.as_ref()),
        "selective scan differs from full-run scan"
    );
    assert_eq!(
        harvest_fingerprint(scan_only.artifacts.harvest()),
        harvest_fingerprint(full.harvest.as_ref().unwrap()),
        "selective harvest differs from full-run harvest"
    );
    // Geomap closure takes the deanon-window branch instead.
    let geomap_only = study.run_until(StageId::Geomap);
    assert_eq!(
        format!("{:?}", Some(geomap_only.artifacts.deanon())),
        format!("{:?}", full.deanon.as_ref()),
        "selective deanon report differs from full-run report"
    );
}

#[test]
fn selective_run_skips_unneeded_stages() {
    let run = Study::new(config()).run_until(StageId::PortScan);
    let executed: Vec<StageId> = run.timings.executed.iter().map(|t| t.stage).collect();
    assert_eq!(
        executed,
        vec![StageId::Setup, StageId::Harvest, StageId::PortScan]
    );
    for skipped in [
        StageId::DeanonWindow,
        StageId::Geomap,
        StageId::Certs,
        StageId::Crawl,
        StageId::Popularity,
        StageId::Tracking,
    ] {
        assert!(run.timings.skipped(skipped), "{skipped} should be skipped");
    }
}

#[test]
fn stage_counters_reflect_artifacts() {
    let run = Study::new(config()).run_until(StageId::PortScan);
    let harvest = run.timings.stage(StageId::Harvest).unwrap();
    assert_eq!(
        harvest.counter("descriptors"),
        Some(run.artifacts.harvest().onion_count() as u64)
    );
    let scan = run.timings.stage(StageId::PortScan).unwrap();
    assert_eq!(
        scan.counter("open_ports"),
        Some(u64::from(run.artifacts.scan().total_open()))
    );
}

#[test]
fn hot_path_counters_consistent() {
    let a = Study::new(config()).run();
    // Every sim stage reports the hot-path quartet.
    for stage in [
        StageId::Setup,
        StageId::Harvest,
        StageId::DeanonWindow,
        StageId::PortScan,
    ] {
        let t = a.stages.stage(stage).unwrap();
        for name in [
            "sha1_digests",
            "desc_cache_hits",
            "desc_cache_misses",
            "fetches",
        ] {
            assert!(t.counter(name).is_some(), "{stage} missing {name}");
        }
    }
    // The cache earns its keep on the long stages: descriptor IDs only
    // rotate daily, so hits dominate misses during the harvest.
    let harvest = a.stages.stage(StageId::Harvest).unwrap();
    assert!(
        harvest.counter("desc_cache_hits") > harvest.counter("desc_cache_misses"),
        "harvest counters: {:?}",
        harvest.counters
    );
    assert!(a.stages.counter_total("fetches") > 0);
    // SHA-1 work is exactly four digests per cache refill (2 replicas ×
    // 2 finalizes), stage by stage.
    for t in &a.stages.executed {
        if let (Some(sha1), Some(misses)) =
            (t.counter("sha1_digests"), t.counter("desc_cache_misses"))
        {
            assert_eq!(sha1, 4 * misses, "{}: {:?}", t.stage, t.counters);
        }
    }
    // And the whole quartet is deterministic across same-seed runs.
    let b = Study::new(config()).run();
    let hot = |r: &StudyReport| -> Vec<u64> {
        [
            "sha1_digests",
            "desc_cache_hits",
            "desc_cache_misses",
            "fetches",
        ]
        .iter()
        .map(|n| r.stages.counter_total(n))
        .collect()
    };
    assert_eq!(hot(&a), hot(&b));
}

#[test]
fn deanon_target_is_looked_up_from_world() {
    // The hard-coded Goldnet label is gone: the engine asks the world
    // for its top front end, which at any seed is a planted Goldnet
    // C&C service.
    let run = Pipeline::new(config()).run(&[StageId::DeanonWindow], ExecMode::parallel());
    let target = run.artifacts.deanon_window().target;
    let service = run
        .artifacts
        .world()
        .services()
        .iter()
        .find(|s| s.onion == target)
        .expect("target exists in world");
    assert!(
        matches!(service.role, hs_landscape::hs_world::Role::GoldnetCc { .. }),
        "target {target} is not a Goldnet front end: {:?}",
        service.role
    );
}

//! Observability-layer contracts: deterministic sim-clock traces,
//! trace structure, histogram exposure, and the dual wall-clock
//! semantics of the extended `bench_stages.json`.
//!
//! The span trace carries two clocks. Wall-clock intervals differ
//! between runs by nature; the **sim-clock** export must not — it is a
//! pure function of the seed and the plan, and these tests pin that
//! byte-for-byte, fault-free and adversarial alike.

use hs_landscape::obs::{self, TraceClock};
use hs_landscape::pipeline::{ExecMode, Pipeline, RunOptions, StageId};
use hs_landscape::{Study, StudyConfig};

fn config() -> StudyConfig {
    StudyConfig::test_scale()
}

fn traced() -> RunOptions {
    RunOptions {
        trace: true,
        log: obs::Logger::off(),
    }
}

/// The deterministic sim-clock export of a full test-scale run.
fn sim_trace_json(cfg: &StudyConfig) -> String {
    let report = Study::new(cfg.clone()).run_with(traced());
    report
        .trace
        .expect("traced run returns a trace")
        .to_chrome_json(TraceClock::Sim)
}

#[test]
fn sim_clock_trace_is_byte_identical_across_runs() {
    let a = sim_trace_json(&config());
    let b = sim_trace_json(&config());
    assert_eq!(a, b, "same seed + plan must give byte-identical traces");
    obs::trace::validate_json(&a).expect("trace export is valid JSON");
}

#[test]
fn adversarial_sim_clock_trace_is_byte_identical_across_runs() {
    let mut cfg = config();
    cfg.apply_fault_profile("adversarial").unwrap();
    let a = sim_trace_json(&cfg);
    let b = sim_trace_json(&cfg);
    assert_eq!(a, b, "fault injection is deterministic, so is its trace");
    obs::trace::validate_json(&a).expect("adversarial trace is valid JSON");
    // The adversarial profile degrades `certs` and retries `geomap`;
    // both must be visible as typed events.
    assert!(a.contains("\"name\": \"degraded\""), "{a}");
    assert!(a.contains("\"name\": \"retry\""), "{a}");
    assert!(a.contains("\"name\": \"fault\""), "{a}");
}

#[test]
fn trace_covers_every_executed_stage_with_nested_spans() {
    let report = Study::new(config()).run_with(traced());
    let trace = report.trace.as_ref().expect("trace present");
    let json = trace.to_chrome_json(TraceClock::Sim);

    // Lane 0 is the run itself; every executed stage has its own lane.
    assert_eq!(trace.lanes[0].name, "pipeline");
    for t in &report.stages.executed {
        assert!(
            json.contains(&format!("\"name\": \"stage:{}\"", t.stage)),
            "stage {} missing from trace",
            t.stage
        );
        assert!(
            json.contains(&format!("\"name\": \"stage {}\"", t.stage)),
            "lane metadata for {} missing",
            t.stage
        );
    }
    // Nested sim rounds and client ops under the sim stages, attempt
    // spans everywhere.
    assert!(json.contains("\"name\": \"round\""), "{json}");
    assert!(json.contains("\"name\": \"traffic_tick\""), "{json}");
    assert!(json.contains("\"name\": \"scan_day\""), "{json}");
    assert!(json.contains("\"name\": \"attempt 1\""), "{json}");
    assert!(json.contains("\"name\": \"cache\""), "{json}");
    // The sim view carries no wall-clock data: a second run renders
    // the same bytes (checked above), and every lane has spans.
    assert!(trace.span_count() > report.stages.executed.len() * 2);
}

#[test]
fn untraced_runs_carry_no_trace() {
    let report = Study::new(config()).run();
    assert!(report.trace.is_none());
    let run = Pipeline::new(config()).run(&[StageId::PortScan], ExecMode::sequential());
    assert!(run.trace.is_none());
}

#[test]
fn tracing_changes_no_artifact_byte() {
    let traced_report = Study::new(config()).run_with(traced());
    let plain = Study::new(config()).run();
    // Compare a broad artifact fingerprint: the harvest crop, the scan
    // outcome, and the popularity resolution fully determine the rest.
    let fp = |r: &hs_landscape::StudyReport| {
        format!(
            "{:?}|{:?}|{}|{}",
            r.harvest.as_ref().unwrap().onions,
            r.scan.as_ref().unwrap().open_by_port,
            r.resolution.as_ref().unwrap().total_requests,
            r.crawl.as_ref().unwrap().classified.len(),
        )
    };
    assert_eq!(fp(&traced_report), fp(&plain));
}

#[test]
fn pipeline_reports_at_least_four_histograms_with_quantiles() {
    let report = Study::new(config()).run_with(traced());
    let hists = report.stages.histograms();
    assert!(
        hists.len() >= 4,
        "expected >= 4 histograms, got {:?}",
        hists.iter().map(|(s, n, _)| (*s, *n)).collect::<Vec<_>>()
    );
    let names: Vec<&str> = hists.iter().map(|(_, n, _)| *n).collect();
    for expected in [
        "harvest.descriptors_per_relay",
        "scan.fetch_attempts",
        "crawl.connect_attempts",
        "crawl.words_per_page",
        "popularity.requests_per_onion",
    ] {
        assert!(names.contains(&expected), "missing {expected}: {names:?}");
    }
    // Every populated histogram serialises with its quantiles.
    let json = report.stages.to_json();
    obs::trace::validate_json(&json).expect("extended bench JSON parses");
    for (owner, name, h) in &hists {
        if h.count() > 0 {
            assert!(h.p50() <= h.p90() && h.p90() <= h.p99());
            assert!(h.p99() <= h.max());
            assert!(
                json.contains(&format!("\"metric\": \"{name}\", \"owner\": \"{owner}\"")),
                "{name} missing from JSON"
            );
        }
    }
    assert!(json.contains("\"p50\": "));
    assert!(json.contains("\"p90\": "));
    assert!(json.contains("\"p99\": "));
}

#[test]
fn legacy_bench_layout_keys_survive_the_extension() {
    let report = Study::new(config()).run();
    let json = report.stages.to_json();
    // The historical keys the committed baselines grep.
    for t in &report.stages.executed {
        assert!(json.contains(&format!("{{\"stage\": \"{}\", \"wall_ms\": ", t.stage)));
    }
    assert!(json.contains("\"skipped\": ["));
    // The fault-free run reports no fault counters and no degraded
    // section — the legacy layout promise.
    assert!(!json.contains("relay_crashes"));
    assert!(!json.contains("\"degraded\""));
    // And the new sections never collide with the baseline grep:
    // metric lines must not contain a "stage" key.
    for line in json.lines() {
        if line.contains("\"metric\"") {
            assert!(!line.contains("\"stage\""), "collides with grep: {line}");
        }
    }
}

#[test]
fn summed_and_elapsed_wall_clocks_are_both_reported() {
    let report = Study::new(config()).run();
    let json = report.stages.to_json();
    assert!(json.contains("\"summed_wall_ms\": "));
    assert!(json.contains("\"elapsed_wall_ms\": "));
    // Elapsed covers the whole run and is never zero; the summed
    // number counts every stage body once.
    assert!(report.stages.elapsed.as_nanos() > 0);
    assert!(report.stages.total_wall().as_nanos() > 0);
}

#[test]
fn degraded_stages_appear_as_degraded_events_not_stage_spans() {
    let mut cfg = config();
    cfg.apply_fault_profile("adversarial").unwrap();
    let report = Study::new(cfg).run_with(traced());
    let trace = report.trace.as_ref().expect("trace present");
    let json = trace.to_chrome_json(TraceClock::Sim);
    // `certs` degrades permanently: it gets a lane and a degraded
    // event, but no completed stage span.
    assert!(json.contains("\"name\": \"stage certs\""), "{json}");
    assert!(!json.contains("\"name\": \"stage:certs\""), "{json}");
    assert!(json.contains("\"name\": \"degraded\""), "{json}");
    // `geomap` retried once and then completed: stage span plus a
    // retry event.
    assert!(json.contains("\"name\": \"stage:geomap\""), "{json}");
    assert!(json.contains("\"name\": \"attempt 2\""), "{json}");
}

//! Exact-vs-streaming differential: the bounded-memory sketch path
//! must reproduce the exact popularity pipeline's Table II ranks while
//! holding only O(sketch size) event state.
//!
//! The guarantee pinned here is the "exactness window" documented in
//! `hs_popularity::streaming`: while the distinct requested descriptor
//! IDs fit in the space-saving capacity (no evictions), the tracked
//! counts — and therefore the derived ranks — are exact, not merely
//! approximate.

use hs_landscape::hs_popularity::SketchConfig;
use hs_landscape::{Study, StudyConfig, StudyReport};

fn config(streaming: bool) -> StudyConfig {
    StudyConfig {
        seed: 7,
        scale: 0.03,
        streaming: streaming.then(SketchConfig::default),
        ..StudyConfig::test_scale()
    }
}

fn exact() -> &'static StudyReport {
    static RUN: std::sync::OnceLock<StudyReport> = std::sync::OnceLock::new();
    RUN.get_or_init(|| Study::new(config(false)).run())
}

fn streamed() -> &'static StudyReport {
    static RUN: std::sync::OnceLock<StudyReport> = std::sync::OnceLock::new();
    RUN.get_or_init(|| Study::new(config(true)).run())
}

#[test]
fn streaming_reproduces_exact_table2_ranks() {
    let (a, b) = (exact(), streamed());
    assert!(a.is_complete(), "{:?}", a.degraded_stages());
    assert!(b.is_complete(), "{:?}", b.degraded_stages());
    let (exact_rank, stream_rank) = (a.ranking.as_ref().unwrap(), b.ranking.as_ref().unwrap());
    let (top_a, top_b) = (exact_rank.top(20), stream_rank.top(20));
    assert_eq!(top_a.len(), top_b.len());
    assert!(!top_a.is_empty(), "scale 0.03 must rank services");
    for (x, y) in top_a.iter().zip(top_b.iter()) {
        assert_eq!(x.rank, y.rank);
        assert_eq!(x.onion, y.onion, "rank {} onion diverged", x.rank);
        assert_eq!(x.requests, y.requests, "rank {} count diverged", x.rank);
        assert_eq!(x.label, y.label, "rank {} label diverged", x.rank);
    }
    // The whole ranking, not just the head, comes out identical.
    assert_eq!(exact_rank.rows().len(), stream_rank.rows().len());
}

#[test]
fn streaming_resolution_matches_exact_counts() {
    let (a, b) = (
        exact().resolution.as_ref().unwrap(),
        streamed().resolution.as_ref().unwrap(),
    );
    assert_eq!(a.total_requests, b.total_requests);
    assert_eq!(a.resolved_desc_ids, b.resolved_desc_ids);
    assert_eq!(a.resolved_onions, b.resolved_onions);
    assert_eq!(a.requests_per_onion, b.requests_per_onion);
    assert_eq!(a.unresolved_requests, b.unresolved_requests);
    // Distinct IDs come from the HyperLogLog on the streaming path:
    // an estimate, pinned to the paper's <5 % error envelope.
    let err = b.unique_desc_ids.abs_diff(a.unique_desc_ids) as f64;
    assert!(
        err <= a.unique_desc_ids as f64 * 0.05,
        "hll {} vs exact {}",
        b.unique_desc_ids,
        a.unique_desc_ids
    );
}

#[test]
fn streaming_holds_sketch_state_not_events() {
    let (a, b) = (exact(), streamed());
    // Exact path materializes the request log; streaming must not.
    assert!(!a.harvest.as_ref().unwrap().requests.is_empty());
    assert!(
        b.harvest.as_ref().unwrap().requests.is_empty(),
        "streaming run materialized the event vector"
    );
    assert!(a.sketch.is_none(), "exact run grew a sketch summary");
    let s = b.sketch.as_ref().expect("streaming run reports sketches");
    // Within the exactness window: every tracked count is exact.
    assert_eq!(s.topk_churn, 0, "evictions at scale 0.03");
    assert_eq!(
        s.total_requests,
        a.resolution.as_ref().unwrap().total_requests
    );
    assert!(s.batches > 0);
    // O(sketch size): bounded by the configuration, not the stream.
    assert!(s.memory_bytes >= SketchConfig::default().memory_bytes());
    assert!(s.memory_bytes < 2 << 20, "{}", s.memory_bytes);
}

//! End-to-end pipeline integration: run the whole study at test scale
//! and check the cross-crate invariants that tie the stages together.

use hs_landscape::{Study, StudyConfig, StudyReport};

fn run_study() -> &'static StudyReport {
    static STUDY: std::sync::OnceLock<StudyReport> = std::sync::OnceLock::new();
    STUDY.get_or_init(|| Study::new(StudyConfig::test_scale()).run())
}

#[test]
fn harvest_feeds_scan_feeds_crawl() {
    let r = run_study();

    // Harvest found a large share of the publishing services.
    let publishing = r
        .world
        .services()
        .iter()
        .filter(|s| s.publishes_descriptors())
        .count();
    let coverage = r.harvest.coverage_of(publishing);
    assert!(coverage > 0.5, "harvest coverage {coverage}");

    // Everything the scan probed came from the harvest crop.
    assert_eq!(r.scan.targets, r.harvest.onion_count());
    for onion in r.scan.open_by_onion.keys() {
        assert!(r.harvest.onions.contains(onion), "{onion} not harvested");
    }

    // Crawl attempted exactly the scan's non-55080 destinations.
    assert_eq!(r.crawl.attempted, r.scan.crawl_destinations().len());
}

#[test]
fn funnel_accounting_holds() {
    let r = run_study();
    assert_eq!(
        r.crawl.connected,
        r.crawl.excluded_errors
            + r.crawl.excluded_short
            + r.crawl.excluded_mirrors
            + r.crawl.classified.len()
    );
}

#[test]
fn popularity_resolution_subset_of_harvest() {
    let r = run_study();
    assert!(r.resolution.total_requests > 0);
    for onion in r.resolution.requests_per_onion.keys() {
        assert!(
            r.harvest.onions.contains(onion),
            "resolved onion {onion} must come from the harvested list"
        );
    }
    // Phantom requests exist (dark services are polled).
    assert!(r.resolution.unresolved_requests > 0);
}

#[test]
fn ranking_is_consistent_with_resolution() {
    let r = run_study();
    // The study ranking is coverage-normalised, so counts differ from the
    // raw log, but every resolved onion gets exactly one row.
    assert_eq!(r.ranking.rows().len(), r.resolution.resolved_onions);

    // The *raw* ranking preserves the logged totals exactly.
    let raw = hs_landscape::hs_popularity::Ranking::build(&r.resolution, &r.world);
    let total_ranked: u64 = raw.rows().iter().map(|row| row.requests).sum();
    let total_resolved: u64 = r.resolution.requests_per_onion.values().sum();
    assert_eq!(total_ranked, total_resolved);

    // Normalisation never invents onions and keeps counts positive.
    for row in r.ranking.rows() {
        assert!(r.resolution.requests_per_onion.contains_key(&row.onion));
        assert!(row.requests > 0 || r.resolution.requests_per_onion[&row.onion] > 0);
    }
}

#[test]
fn deanon_observations_reference_real_clients() {
    let r = run_study();
    // The expected catch rate is positive once attacker guards are in
    // the consensus.
    assert!(r.deanon.expected_rate > 0.0);
    // All caught clients map into the geo database.
    let sum: u32 = r.deanon.geomap.rows().iter().map(|x| x.2).sum();
    assert_eq!(sum, r.deanon.unique_clients);
}

#[test]
fn study_is_deterministic() {
    let a = Study::new(StudyConfig::test_scale()).run();
    let b = Study::new(StudyConfig::test_scale()).run();
    assert_eq!(a.harvest.onion_count(), b.harvest.onion_count());
    assert_eq!(a.scan.total_open(), b.scan.total_open());
    assert_eq!(a.crawl.classified.len(), b.crawl.classified.len());
    assert_eq!(a.resolution.total_requests, b.resolution.total_requests);
    let ra: Vec<_> = a.ranking.top(10).iter().map(|r| r.onion).collect();
    let rb: Vec<_> = b.ranking.top(10).iter().map(|r| r.onion).collect();
    assert_eq!(ra, rb);
}

#[test]
fn seed_changes_world() {
    let a = Study::new(StudyConfig {
        seed: 1,
        ..StudyConfig::test_scale()
    })
    .run();
    let b = Study::new(StudyConfig {
        seed: 2,
        ..StudyConfig::test_scale()
    })
    .run();
    // Planted entities are identical, but the bulk population differs.
    let onions_a: std::collections::BTreeSet<_> =
        a.world.services().iter().map(|s| s.onion).collect();
    let onions_b: std::collections::BTreeSet<_> =
        b.world.services().iter().map(|s| s.onion).collect();
    assert_ne!(onions_a, onions_b);
}

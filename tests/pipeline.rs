//! End-to-end pipeline integration: run the whole study at test scale
//! and check the cross-crate invariants that tie the stages together.

use hs_landscape::{Study, StudyConfig, StudyReport};

fn run_study() -> &'static StudyReport {
    static STUDY: std::sync::OnceLock<StudyReport> = std::sync::OnceLock::new();
    STUDY.get_or_init(|| Study::new(StudyConfig::test_scale()).run())
}

#[test]
fn harvest_feeds_scan_feeds_crawl() {
    let r = run_study();
    assert!(r.is_complete(), "degraded: {:?}", r.degraded_stages());
    let (world, harvest) = (r.world.as_ref().unwrap(), r.harvest.as_ref().unwrap());
    let (scan, crawl) = (r.scan.as_ref().unwrap(), r.crawl.as_ref().unwrap());

    // Harvest found a large share of the publishing services.
    let publishing = world
        .services()
        .iter()
        .filter(|s| s.publishes_descriptors())
        .count();
    let coverage = harvest.coverage_of(publishing);
    assert!(coverage > 0.5, "harvest coverage {coverage}");

    // Everything the scan probed came from the harvest crop.
    assert_eq!(scan.targets, harvest.onion_count());
    for onion in scan.open_by_onion.keys() {
        assert!(harvest.onions.contains(onion), "{onion} not harvested");
    }

    // Crawl attempted exactly the scan's non-55080 destinations.
    assert_eq!(crawl.attempted, scan.crawl_destinations().len());
}

#[test]
fn funnel_accounting_holds() {
    let crawl = run_study().crawl.as_ref().unwrap();
    assert_eq!(
        crawl.connected,
        crawl.excluded_errors
            + crawl.excluded_short
            + crawl.excluded_mirrors
            + crawl.classified.len()
    );
}

#[test]
fn popularity_resolution_subset_of_harvest() {
    let r = run_study();
    let resolution = r.resolution.as_ref().unwrap();
    let harvest = r.harvest.as_ref().unwrap();
    assert!(resolution.total_requests > 0);
    for onion in resolution.requests_per_onion.keys() {
        assert!(
            harvest.onions.contains(onion),
            "resolved onion {onion} must come from the harvested list"
        );
    }
    // Phantom requests exist (dark services are polled).
    assert!(resolution.unresolved_requests > 0);
}

#[test]
fn ranking_is_consistent_with_resolution() {
    let r = run_study();
    let (ranking, resolution) = (r.ranking.as_ref().unwrap(), r.resolution.as_ref().unwrap());
    // The study ranking is coverage-normalised, so counts differ from the
    // raw log, but every resolved onion gets exactly one row.
    assert_eq!(ranking.rows().len(), resolution.resolved_onions);

    // The *raw* ranking preserves the logged totals exactly.
    let raw = hs_landscape::hs_popularity::Ranking::build(resolution, r.world.as_ref().unwrap());
    let total_ranked: u64 = raw.rows().iter().map(|row| row.requests).sum();
    let total_resolved: u64 = resolution.requests_per_onion.values().sum();
    assert_eq!(total_ranked, total_resolved);

    // Normalisation never invents onions and keeps counts positive.
    for row in ranking.rows() {
        assert!(resolution.requests_per_onion.contains_key(&row.onion));
        assert!(row.requests > 0 || resolution.requests_per_onion[&row.onion] > 0);
    }
}

#[test]
fn deanon_observations_reference_real_clients() {
    let deanon = run_study().deanon.as_ref().unwrap();
    // The expected catch rate is positive once attacker guards are in
    // the consensus.
    assert!(deanon.expected_rate > 0.0);
    // All caught clients map into the geo database.
    let sum: u32 = deanon.geomap.rows().iter().map(|x| x.2).sum();
    assert_eq!(sum, deanon.unique_clients);
}

#[test]
fn study_is_deterministic() {
    let a = Study::new(StudyConfig::test_scale()).run();
    let b = Study::new(StudyConfig::test_scale()).run();
    let count = |r: &StudyReport| r.harvest.as_ref().unwrap().onion_count();
    assert_eq!(count(&a), count(&b));
    let open = |r: &StudyReport| r.scan.as_ref().unwrap().total_open();
    assert_eq!(open(&a), open(&b));
    let pages = |r: &StudyReport| r.crawl.as_ref().unwrap().classified.len();
    assert_eq!(pages(&a), pages(&b));
    let requests = |r: &StudyReport| r.resolution.as_ref().unwrap().total_requests;
    assert_eq!(requests(&a), requests(&b));
    let top = |r: &StudyReport| -> Vec<_> {
        r.ranking
            .as_ref()
            .unwrap()
            .top(10)
            .iter()
            .map(|row| row.onion)
            .collect()
    };
    assert_eq!(top(&a), top(&b));
}

#[test]
fn seed_changes_world() {
    let a = Study::new(StudyConfig {
        seed: 1,
        ..StudyConfig::test_scale()
    })
    .run();
    let b = Study::new(StudyConfig {
        seed: 2,
        ..StudyConfig::test_scale()
    })
    .run();
    // Planted entities are identical, but the bulk population differs.
    let onions_a: std::collections::BTreeSet<_> = a
        .world
        .as_ref()
        .unwrap()
        .services()
        .iter()
        .map(|s| s.onion)
        .collect();
    let onions_b: std::collections::BTreeSet<_> = b
        .world
        .as_ref()
        .unwrap()
        .services()
        .iter()
        .map(|s| s.onion)
        .collect();
    assert_ne!(onions_a, onions_b);
}

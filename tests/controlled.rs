//! Controlled-run contracts: cooperative cancellation, wall-clock and
//! sim-hour budgets, the content-addressed recompute cache, and the
//! deterministic retry backoff schedule.
//!
//! These are the engine-level halves of the guarantees the resident
//! `landscaped` daemon builds on: a halted run is a well-formed
//! partial result, and a cache-served rerun is byte-identical to the
//! run that populated the cache.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hs_landscape::obs::{self, TraceClock};
use hs_landscape::pipeline::{ExecMode, Pipeline, RunOptions, StageId};
use hs_landscape::{CancelToken, Halt, MemoryCache, RunControl, StageCache, StudyConfig};

fn config() -> StudyConfig {
    StudyConfig::test_scale()
}

fn run_with_ctl(
    cfg: &StudyConfig,
    targets: &[StageId],
    ctl: &RunControl,
) -> hs_landscape::PipelineRun {
    Pipeline::new(cfg.clone()).run_controlled(
        targets,
        ExecMode::sequential(),
        RunOptions::default(),
        ctl,
    )
}

#[test]
fn pre_cancelled_token_halts_every_stage() {
    let token = CancelToken::new();
    token.cancel();
    let ctl = RunControl {
        cancel: token,
        ..RunControl::default()
    };
    let run = run_with_ctl(&config(), &StageId::ALL, &ctl);
    assert_eq!(run.halt, Some(Halt::Cancelled));
    assert!(run.timings.executed.is_empty(), "no stage may start");
    assert_eq!(run.timings.halted, StageId::closure(&StageId::ALL));
    for stage in StageId::ALL {
        assert!(
            run.artifacts.extract(stage).is_none(),
            "{stage} deposited an artifact into a cancelled run"
        );
    }
}

#[test]
fn expired_wall_deadline_halts_every_stage() {
    let ctl = RunControl {
        wall_deadline: Some(Instant::now() - Duration::from_secs(1)),
        ..RunControl::default()
    };
    let run = run_with_ctl(&config(), &[StageId::PortScan], &ctl);
    assert_eq!(run.halt, Some(Halt::WallDeadline));
    assert!(run.timings.executed.is_empty());
    assert_eq!(
        run.timings.halted,
        vec![StageId::Setup, StageId::Harvest, StageId::PortScan]
    );
}

#[test]
fn sim_budget_halts_at_the_next_stage_boundary() {
    // Setup bootstraps the consensus by advancing simulated time, so
    // a one-hour budget is already spent at the first stage boundary:
    // setup *finishes* (budgets are checked at boundaries, never
    // mid-stage) and everything downstream is abandoned.
    let ctl = RunControl {
        sim_budget_hours: Some(1),
        ..RunControl::default()
    };
    let run = run_with_ctl(&config(), &[StageId::PortScan], &ctl);
    assert_eq!(run.halt, Some(Halt::SimBudget));
    let executed: Vec<StageId> = run.timings.executed.iter().map(|t| t.stage).collect();
    assert_eq!(executed, vec![StageId::Setup]);
    assert_eq!(
        run.timings.halted,
        vec![StageId::Harvest, StageId::PortScan]
    );
    // The finished prefix keeps its artifacts.
    assert!(run.artifacts.extract(StageId::Setup).is_some());
    assert!(run.artifacts.extract(StageId::Harvest).is_none());
}

#[test]
fn cancellation_wins_over_deadlines_in_the_halt_reason() {
    let token = CancelToken::new();
    token.cancel();
    let ctl = RunControl {
        cancel: token,
        wall_deadline: Some(Instant::now() - Duration::from_secs(1)),
        sim_budget_hours: Some(0),
        ..RunControl::default()
    };
    let run = run_with_ctl(&config(), &[StageId::Setup], &ctl);
    assert_eq!(run.halt, Some(Halt::Cancelled));
}

/// The tentpole byte-identity claim: a rerun served entirely from the
/// cache produces artifacts whose rendering is identical to the run
/// that populated it, and the halted/degraded sections stay empty.
#[test]
fn cache_served_rerun_is_byte_identical() {
    let cfg = config();
    let cache = Arc::new(MemoryCache::new(32));
    let ctl = RunControl {
        cache: Some(cache.clone() as Arc<dyn StageCache>),
        ..RunControl::default()
    };
    let first = run_with_ctl(&cfg, &[StageId::PortScan], &ctl);
    assert!(first.halt.is_none());
    let after_first = cache.counters();
    assert_eq!(after_first.hits, 0);
    assert_eq!(
        after_first.misses, 3,
        "setup, harvest, port_scan probe and miss"
    );
    assert_eq!(after_first.insertions, 3);

    let second = run_with_ctl(&cfg, &[StageId::PortScan], &ctl);
    assert!(second.halt.is_none());
    let after_second = cache.counters();
    assert_eq!(
        after_second.hits, 3,
        "every stage must be served from cache"
    );
    assert_eq!(after_second.misses, 3, "no new misses on the rerun");

    // Every executed stage in the rerun is flagged as a cache hit…
    for timing in &second.timings.executed {
        assert!(
            timing
                .counters
                .iter()
                .any(|&(k, v)| k == "stage_cache_hit" && v == 1),
            "{} re-ran instead of hitting the cache",
            timing.stage
        );
    }
    // …and the artifacts are the same bytes. (`ScanReport` and
    // `HarvestOutcome` render through ordered containers only.)
    let scan = |run: &hs_landscape::PipelineRun| format!("{:?}", run.artifacts.scan());
    let harvest = |run: &hs_landscape::PipelineRun| format!("{:?}", run.artifacts.harvest());
    assert_eq!(scan(&first), scan(&second));
    assert_eq!(harvest(&first), harvest(&second));
}

#[test]
fn epoch_salt_isolates_cache_entries() {
    let cfg = config();
    let cache = Arc::new(MemoryCache::new(32));
    let at_salt = |salt: u64| RunControl {
        cache: Some(cache.clone() as Arc<dyn StageCache>),
        epoch_salt: salt,
        ..RunControl::default()
    };
    run_with_ctl(&cfg, &[StageId::Setup], &at_salt(1));
    assert_eq!(cache.counters().hits, 0);
    // A different epoch cannot see the first epoch's world…
    run_with_ctl(&cfg, &[StageId::Setup], &at_salt(2));
    assert_eq!(cache.counters().hits, 0);
    assert_eq!(cache.counters().misses, 2);
    // …while the first epoch's key still serves it.
    run_with_ctl(&cfg, &[StageId::Setup], &at_salt(1));
    assert_eq!(cache.counters().hits, 1);
}

#[test]
fn flaky_retry_records_a_deterministic_backoff_schedule() {
    let mut cfg = config();
    cfg.flaky_stages = vec![StageId::Geomap];
    let opts = RunOptions {
        trace: true,
        log: obs::Logger::off(),
    };
    let run_once = || {
        let run = Pipeline::new(cfg.clone()).run_controlled(
            &[StageId::Geomap],
            ExecMode::sequential(),
            opts,
            &RunControl::default(),
        );
        let geomap = run
            .timings
            .executed
            .iter()
            .find(|t| t.stage == StageId::Geomap)
            .expect("geomap ran")
            .clone();
        let trace = run
            .trace
            .as_ref()
            .expect("traced run")
            .to_chrome_json(TraceClock::Sim);
        (geomap, trace)
    };
    let (timing_a, trace_a) = run_once();
    let (timing_b, trace_b) = run_once();

    // The flaky first attempt failed, so the recovery attempt carries
    // the sim-clock backoff both in the stage counters…
    let backoff = |t: &hs_landscape::StageTiming| {
        t.counters
            .iter()
            .find(|&&(k, _)| k == "stage_backoff_secs")
            .map(|&(_, v)| v)
    };
    let wait = backoff(&timing_a).expect("retried stage records its backoff");
    assert!(wait > 0, "backoff must be a positive sim-clock wait");
    assert_eq!(
        backoff(&timing_b),
        Some(wait),
        "backoff is seed-deterministic"
    );

    // …and in the span trace's retry event.
    assert!(
        trace_a.contains("backoff_secs"),
        "trace lost the per-attempt backoff annotation"
    );
    assert_eq!(
        trace_a, trace_b,
        "retry schedule must be wall-clock independent"
    );
}

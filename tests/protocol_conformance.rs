//! Cross-crate protocol conformance: the simulator must implement the
//! v2 rendezvous identifiers and directory rules exactly as specified
//! (rend-spec-v2 / dir-spec), because every measurement in the paper
//! rests on them.

use hs_landscape::onion_crypto::{
    base32,
    descriptor::{DescriptorId, Replica, TimePeriod, TIME_PERIOD_SECS},
    sha1::Sha1,
    OnionAddress, U160,
};
use hs_landscape::tor_sim::clock::{SimTime, DAY};
use hs_landscape::tor_sim::network::{FetchOutcome, NetworkBuilder};
use hs_landscape::tor_sim::relay::{Ipv4, Operator};
use hs_landscape::tor_sim::{RelayFlags, TrafficSignature};

/// descriptor-id = SHA1(permanent-id | SHA1(time-period | replica)),
/// recomputed by hand against the library's implementation.
#[test]
fn descriptor_id_formula_matches_spec() {
    let onion = OnionAddress::from_pubkey(b"spec conformance key");
    let perm = onion.permanent_id();
    let now = SimTime::from_ymd(2013, 2, 4).unix();

    // time-period = (now + byte0 * 86400 / 256) / 86400
    let expected_period =
        (now + u64::from(perm.byte0()) * TIME_PERIOD_SECS / 256) / TIME_PERIOD_SECS;
    assert_eq!(TimePeriod::at(now, perm).0, expected_period);

    for (i, replica) in Replica::ALL.into_iter().enumerate() {
        let mut inner = Sha1::new();
        inner.update((expected_period as u32).to_be_bytes());
        inner.update([i as u8]);
        let secret = inner.finalize();

        let mut outer = Sha1::new();
        outer.update(perm.as_bytes());
        outer.update(secret.as_bytes());
        let by_hand = outer.finalize();

        assert_eq!(
            DescriptorId::compute(perm, TimePeriod(expected_period), replica).digest(),
            by_hand
        );
    }
}

/// The onion address is base32 of the first 80 bits of SHA1(pubkey).
#[test]
fn onion_address_formula_matches_spec() {
    let pubkey = b"another conformance key";
    let digest = Sha1::digest(pubkey);
    let label = base32::encode(&digest.as_bytes()[..10]);
    assert_eq!(OnionAddress::from_pubkey(pubkey).label(), label);
    assert_eq!(label.len(), 16);
}

/// Responsible HSDirs are the 3 fingerprints following the descriptor
/// ID in ring order — verified against a brute-force search over a
/// live consensus.
#[test]
fn responsible_hsdirs_are_ring_successors() {
    let net = NetworkBuilder::new()
        .relays(90)
        .seed(77)
        .start(SimTime::from_ymd(2013, 2, 4))
        .build();
    let consensus = net.consensus();
    let onion = OnionAddress::from_pubkey(b"any service");
    for desc_id in DescriptorId::pair_at(onion, net.time().unix()) {
        let resp = consensus.responsible_hsdirs(desc_id);
        assert_eq!(resp.len(), 3);
        let pos = desc_id.to_u160();
        // Brute force: sort all HSDirs by forward distance.
        let mut all: Vec<U160> = consensus
            .hsdirs()
            .map(|e| pos.distance_to(e.fingerprint.to_u160()))
            .collect();
        all.sort();
        let got: Vec<U160> = {
            let mut v: Vec<U160> = resp
                .iter()
                .map(|e| pos.distance_to(e.fingerprint.to_u160()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(got, all[..3].to_vec());
    }
}

/// A service's descriptors rotate once per (staggered) 24 h period and
/// remain fetchable across the transition.
#[test]
fn descriptor_rotation_continuity() {
    let mut net = NetworkBuilder::new()
        .relays(80)
        .seed(3)
        .start(SimTime::from_ymd(2013, 2, 1))
        .build();
    let onion = OnionAddress::from_pubkey(b"rotating svc");
    net.register_service(onion, true);
    net.advance_hours(1);
    let client = net.add_client(Ipv4::new(7, 7, 7, 7));
    for _ in 0..30 {
        assert_eq!(net.client_fetch(client, onion), FetchOutcome::Found);
        net.advance_hours(2);
    }
}

/// The two-per-IP rule and the shadow-relay uptime flaw, end to end:
/// a shadow relay walks into the consensus with an instant HSDir flag,
/// while a freshly started relay does not.
#[test]
fn shadow_relay_flaw_end_to_end() {
    use hs_landscape::onion_crypto::SimIdentity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut net = NetworkBuilder::new()
        .relays(40)
        .seed(5)
        .start(SimTime::from_ymd(2013, 2, 1))
        .build();
    let mut rng = StdRng::seed_from_u64(123);
    let ip = Ipv4::new(198, 18, 9, 9);
    // Three relays, one IP, descending bandwidth.
    let fast = net.add_relay(
        "a",
        ip,
        9001,
        SimIdentity::generate(&mut rng),
        300,
        Operator::Harvester,
    );
    let mid = net.add_relay(
        "b",
        ip,
        9002,
        SimIdentity::generate(&mut rng),
        200,
        Operator::Harvester,
    );
    let shadow = net.add_relay(
        "c",
        ip,
        9003,
        SimIdentity::generate(&mut rng),
        100,
        Operator::Harvester,
    );

    net.advance_hours(26);
    let c = net.consensus();
    assert!(c.entry(net.relay(fast).fingerprint()).is_some());
    assert!(c.entry(net.relay(mid).fingerprint()).is_some());
    assert!(
        c.entry(net.relay(shadow).fingerprint()).is_none(),
        "third relay shadowed"
    );

    // Shadowing move: burn one active relay.
    net.relay_mut(fast).reachable = false;
    net.revote();
    let entry = net
        .consensus()
        .entry(net.relay(shadow).fingerprint())
        .expect("shadow promoted");
    assert!(
        entry.flags.contains(RelayFlags::HSDIR),
        "promoted shadow carries HSDir instantly: {}",
        entry.flags
    );

    // Control: a brand-new relay gets no HSDir flag.
    let fresh = net.add_relay(
        "fresh",
        Ipv4::new(198, 18, 9, 10),
        9001,
        SimIdentity::generate(&mut rng),
        500,
        Operator::Honest,
    );
    net.advance_hours(1);
    let entry = net
        .consensus()
        .entry(net.relay(fresh).fingerprint())
        .unwrap();
    assert!(!entry.flags.contains(RelayFlags::HSDIR));
}

/// Guard rotation: entries live 30–60 days; one guard per circuit; the
/// deanonymisation signature is only seen by attacker guards.
#[test]
fn guard_lifecycle_and_signature_visibility() {
    let mut net = NetworkBuilder::new()
        .relays(100)
        .seed(9)
        .start(SimTime::from_ymd(2013, 2, 1))
        .build();
    let onion = OnionAddress::from_pubkey(b"sig target");
    net.register_service(onion, true);
    net.arm_signature(onion, TrafficSignature::default());
    net.advance_hours(1);

    let client = net.add_client(Ipv4::new(11, 22, 33, 44));
    assert_eq!(net.client_fetch(client, onion), FetchOutcome::Found);
    // All-honest network: no observations despite the armed signature.
    assert!(net.guard_observations().is_empty());

    // Guard set was established and within lifetime bounds.
    let guards = net.client(client).guards.entries().to_vec();
    assert_eq!(guards.len(), 3);
    for g in &guards {
        let days = g.expires.since(net.time()) / DAY;
        assert!((27..=60).contains(&days), "lifetime {days}d");
    }

    // Fetch repeatedly: the used guard is always from the set.
    for _ in 0..10 {
        net.advance_hours(1);
        assert_eq!(net.client_fetch(client, onion), FetchOutcome::Found);
    }
}

/// Descriptors expire from stores 24 h after publication: a service
/// going offline disappears within a day.
#[test]
fn descriptor_expiry_after_service_death() {
    let mut net = NetworkBuilder::new()
        .relays(60)
        .seed(13)
        .start(SimTime::from_ymd(2013, 2, 1))
        .build();
    let onion = OnionAddress::from_pubkey(b"dying service");
    net.register_service(onion, true);
    net.advance_hours(2);
    let client = net.add_client(Ipv4::new(5, 5, 5, 5));
    assert_eq!(net.client_fetch(client, onion), FetchOutcome::Found);

    net.set_service_online(onion, false);
    net.advance_hours(25);
    assert_eq!(net.client_fetch(client, onion), FetchOutcome::NotFound);
}

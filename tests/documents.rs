//! Document-format integration: the dir-spec consensus codec and the
//! v2 descriptor codec, exercised through live simulator state — the
//! same round trip the paper's tooling performed against the
//! metrics.torproject.org archive and harvested descriptor files.

use hs_landscape::onion_crypto::descriptor::Replica;
use hs_landscape::onion_crypto::hsdesc::HsDescriptor;
use hs_landscape::onion_crypto::{OnionAddress, SimIdentity};
use hs_landscape::tor_sim::clock::SimTime;
use hs_landscape::tor_sim::network::NetworkBuilder;
use hs_landscape::tor_sim::{docfmt, RelayFlags};

use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn live_consensus_roundtrips_through_docfmt() {
    let mut net = NetworkBuilder::new()
        .relays(150)
        .seed(41)
        .start(SimTime::from_ymd(2013, 2, 4))
        .build();
    net.advance_hours(3);

    let doc = docfmt::encode(net.consensus());
    let parsed = docfmt::decode(&doc).expect("well-formed document");

    assert_eq!(parsed.len(), net.consensus().len());
    assert_eq!(parsed.hsdir_count(), net.consensus().hsdir_count());
    assert_eq!(parsed.valid_after(), net.consensus().valid_after());

    // Ring lookups agree between the original and the re-parsed copy.
    let onion = OnionAddress::from_pubkey(b"roundtrip service");
    let a: Vec<_> = net
        .consensus()
        .responsible_for_service(onion, net.time().unix())
        .iter()
        .map(|e| e.fingerprint)
        .collect();
    let b: Vec<_> = parsed
        .responsible_for_service(onion, net.time().unix())
        .iter()
        .map(|e| e.fingerprint)
        .collect();
    assert_eq!(a, b);
}

#[test]
fn archived_consensus_is_stable_text() {
    // Encoding is deterministic: same network state, same document.
    let build = || {
        let mut net = NetworkBuilder::new()
            .relays(60)
            .seed(42)
            .start(SimTime::from_ymd(2013, 2, 4))
            .build();
        net.advance_hours(1);
        docfmt::encode(net.consensus())
    };
    assert_eq!(build(), build());
}

#[test]
fn harvested_descriptor_documents_yield_onion_addresses() {
    // The harvest's core derivation: descriptor document → permanent
    // key → onion address.
    let mut rng = StdRng::seed_from_u64(4242);
    let now = SimTime::from_ymd(2013, 2, 4).unix();
    for i in 0..25 {
        let key = SimIdentity::generate(&mut rng);
        let intro = (0..3)
            .map(|_| SimIdentity::generate(&mut rng).fingerprint())
            .collect();
        let replica = Replica::new(i % 2);
        let desc = HsDescriptor::create(key.public_key().to_vec(), replica, now, intro);

        let doc = desc.encode();
        let parsed = HsDescriptor::decode(&doc).expect("valid document");
        assert_eq!(
            parsed.onion_address(),
            OnionAddress::from_pubkey(key.public_key()),
            "address derived from the document matches the key's"
        );
        assert!(parsed.is_consistent());
    }
}

#[test]
fn flags_survive_the_text_format() {
    let mut net = NetworkBuilder::new()
        .relays(80)
        .seed(43)
        .start(SimTime::from_ymd(2013, 2, 4))
        .build();
    net.advance_hours(1);
    let parsed = docfmt::decode(&docfmt::encode(net.consensus())).unwrap();
    let mut guard_count = 0;
    for (a, b) in parsed.entries().iter().zip(net.consensus().entries()) {
        assert_eq!(a.flags, b.flags, "{}", a.nickname);
        if a.flags.contains(RelayFlags::GUARD) {
            guard_count += 1;
        }
    }
    assert!(guard_count > 0, "fixture must exercise the Guard flag");
}

//! Robustness contracts of the fault-injection layer and the degrading
//! pipeline:
//!
//! * a **zero-rate fault plan is the identity** — every artifact is
//!   byte-identical to a run without any fault plumbing configured;
//! * an **adversarial run is deterministic** — same seed, same faults,
//!   same partial report, in both execution modes;
//! * **failed stages degrade instead of aborting** — the run completes
//!   with the failed stage (and its dependents) recorded and their
//!   report sections `None`, everything else intact.

use std::collections::HashMap;
use std::fmt::Debug;

use hs_landscape::pipeline::{ExecMode, Pipeline, StageId};
use hs_landscape::tor_sim::FaultPlan;
use hs_landscape::{Study, StudyConfig, StudyReport};

fn config() -> StudyConfig {
    StudyConfig::test_scale()
}

fn adversarial_config() -> StudyConfig {
    let mut cfg = config();
    cfg.apply_fault_profile("adversarial")
        .expect("adversarial is a known profile");
    cfg
}

/// Canonical (key-sorted) rendering of a hash map.
fn sorted_map<K: Ord + Debug, V: Debug>(map: &HashMap<K, V>) -> String {
    let mut entries: Vec<(&K, &V)> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    format!("{entries:?}")
}

/// Order-stable fingerprint of a complete run (panics on a degraded
/// one — zero-rate runs must not degrade).
fn complete_fingerprint(r: &StudyReport) -> String {
    assert!(r.is_complete(), "degraded: {:?}", r.degraded_stages());
    let harvest = r.harvest.as_ref().unwrap();
    let resolution = r.resolution.as_ref().unwrap();
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}|{:?}|{:?}|{:?}|{:?}",
        harvest.onions,
        harvest.requests,
        harvest.slot_hours,
        r.scan,
        r.certs,
        r.crawl,
        sorted_map(&resolution.requests_per_onion),
        sorted_map(&r.forensics.as_ref().unwrap().groups),
        r.ranking,
        r.requested_published_share,
        r.deanon,
        r.tracking,
    )
}

/// Order-stable fingerprint of a possibly-degraded run: every section
/// that exists, plus the degraded record and the fault/retry counters.
fn partial_fingerprint(r: &StudyReport) -> String {
    let degraded: Vec<String> = r
        .degraded_stages()
        .iter()
        .map(|d| format!("{}:{}:{}", d.stage, d.attempts, d.error))
        .collect();
    let counters: Vec<String> = [
        "relay_crashes",
        "relay_restarts",
        "fetch_drops",
        "overload_drops",
        "publish_drops",
        "service_flaps",
        "fleet_restarts",
        "fetch_retries",
        "fetch_gave_ups",
        "transient_failures",
        "gave_ups",
        "unnormalized",
        "retries",
    ]
    .iter()
    .map(|n| format!("{n}={}", r.stages.counter_total(n)))
    .collect();
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        r.harvest
            .as_ref()
            .map(|h| { format!("{:?}|{:?}|{:?}", h.onions, h.requests, h.slot_hours) }),
        r.scan,
        r.certs,
        r.crawl,
        r.ranking,
        r.deanon,
        r.tracking,
        degraded,
        counters,
    )
}

#[test]
fn zero_rate_fault_plan_is_byte_identical() {
    // An inert plan with a different (ignored) seed and explicit
    // plumbing must reproduce the default run exactly.
    let baseline = Study::new(config()).run();
    let mut cfg = config();
    cfg.faults = FaultPlan {
        seed: 0xdead_beef,
        ..FaultPlan::none()
    };
    let plumbed = Study::new(cfg).run();
    assert_eq!(
        complete_fingerprint(&baseline),
        complete_fingerprint(&plumbed)
    );
    // And the counter layout is unchanged: no fault counters appear.
    for t in &plumbed.stages.executed {
        assert!(
            t.counter("relay_crashes").is_none(),
            "{}: fault counters must not appear on inert runs",
            t.stage
        );
    }
}

#[test]
fn adversarial_run_is_deterministic_and_degrades_gracefully() {
    let a = Study::new(adversarial_config()).run();
    let b = Study::new(adversarial_config()).run();
    assert_eq!(partial_fingerprint(&a), partial_fingerprint(&b));

    // The injected permanent certs failure degraded exactly that
    // stage; the analysis retry budget (2 attempts) was spent.
    assert!(!a.is_complete());
    let degraded: Vec<StageId> = a.degraded_stages().iter().map(|d| d.stage).collect();
    assert_eq!(degraded, vec![StageId::Certs]);
    assert_eq!(a.stages.degraded(StageId::Certs).unwrap().attempts, 2);
    assert!(a.certs.is_none(), "degraded section must be None");

    // The flaky geomap stage recovered on its second attempt.
    let geomap = a.stages.stage(StageId::Geomap).expect("geomap ran");
    assert_eq!(geomap.counter("retries"), Some(1));
    assert!(a.deanon.is_some(), "recovered section must be present");

    // Everything else survived: a partial report, not an abort.
    assert!(a.harvest.is_some() && a.scan.is_some() && a.crawl.is_some());
    assert!(a.ranking.is_some() && a.resolution.is_some());

    // Protocol faults actually fired and were counted.
    assert!(
        a.stages.counter_total("fetch_drops") > 0,
        "hsdir drops must occur under the adversarial plan"
    );
    assert!(
        a.stages.counter_total("relay_crashes") > 0,
        "relay crashes must occur under the adversarial plan"
    );
}

#[test]
fn adversarial_parallel_equals_sequential() {
    // The ExecMode regression: a failing stage inside the parallel
    // crossbeam wave must produce the same degraded record (order,
    // attempts, error) as the sequential reference.
    let par = Study::new(adversarial_config()).run();
    let seq = Study::new(adversarial_config()).run_sequential();
    assert_eq!(partial_fingerprint(&par), partial_fingerprint(&seq));
}

#[test]
fn failed_sim_stage_cascades_to_dependents() {
    let mut cfg = config();
    cfg.fail_stages = vec![StageId::Harvest];
    let run = Pipeline::new(cfg).run(&[StageId::Certs], ExecMode::parallel());
    let degraded: Vec<(StageId, u32)> = run
        .timings
        .degraded
        .iter()
        .map(|d| (d.stage, d.attempts))
        .collect();
    // Harvest failed its single attempt; the dependents never ran.
    assert_eq!(
        degraded,
        vec![
            (StageId::Harvest, 1),
            (StageId::PortScan, 0),
            (StageId::Certs, 0)
        ]
    );
    for d in &run.timings.degraded[1..] {
        assert!(
            d.error.contains("dependency"),
            "{}: expected a dependency degradation, got {:?}",
            d.stage,
            d.error
        );
    }
    // Setup still completed and its artifacts are readable.
    assert!(run.artifacts.try_world().is_ok());
    assert!(run.artifacts.try_harvest().is_err());
}

#[test]
fn failed_analysis_stage_exhausts_retry_budget() {
    let mut cfg = config();
    cfg.fail_stages = vec![StageId::Popularity];
    let report = Study::new(cfg).run();
    assert!(!report.is_complete());
    let d = report
        .stages
        .degraded(StageId::Popularity)
        .expect("popularity degraded");
    assert_eq!(d.attempts, 2, "analysis retry budget is two attempts");
    assert!(report.resolution.is_none() && report.ranking.is_none());
    assert!(report.forensics.is_none());
    assert!(report.requested_published_share.is_none());
    // Siblings are untouched.
    assert!(report.certs.is_some() && report.crawl.is_some());
    assert!(report.deanon.is_some());
}

#[test]
fn flaky_stage_is_absorbed_by_retry() {
    let mut cfg = config();
    cfg.flaky_stages = vec![StageId::Tracking, StageId::Popularity];
    let run = Pipeline::new(cfg).run(
        &[StageId::Tracking, StageId::Popularity],
        ExecMode::parallel(),
    );
    assert!(
        run.timings.degraded.is_empty(),
        "retries must absorb flaky stages"
    );
    for stage in [StageId::Tracking, StageId::Popularity] {
        let t = run.timings.stage(stage).expect("stage ran");
        assert_eq!(t.counter("retries"), Some(1), "{stage} retried once");
    }
    assert!(run.artifacts.try_tracking().is_ok());
    assert!(run.artifacts.try_popularity().is_ok());
}

#[test]
fn degraded_json_round_trips_through_stage_output() {
    let mut cfg = config();
    cfg.fail_stages = vec![StageId::Certs];
    let report = Study::new(cfg).run();
    let json = report.stages.to_json();
    assert!(json.contains("\"degraded\": ["), "{json}");
    assert!(
        json.contains("{\"stage\": \"certs\", \"attempts\": 2"),
        "{json}"
    );
    // Fault-free runs keep the historical layout.
    let clean = Study::new(config()).run();
    assert!(!clean.stages.to_json().contains("degraded"));
}

//! Shape checks per paper experiment: at reduced scale, every table
//! and figure must reproduce its qualitative result — who wins, by
//! roughly what factor, where the thresholds sit.

use hs_landscape::hs_tracking::{
    scenario, ConsensusArchive, DetectorConfig, HistoryConfig, TrackingDetector,
};
use hs_landscape::hs_world::{calib, Language, Topic};
use hs_landscape::tor_sim::clock::SimTime;
use hs_landscape::{Study, StudyConfig, StudyReport};

fn study() -> &'static StudyReport {
    // One shared run (studies are deterministic); a slightly larger
    // scale than the unit tests so percentages are stable.
    static STUDY: std::sync::OnceLock<StudyReport> = std::sync::OnceLock::new();
    STUDY.get_or_init(run_study)
}

fn scan() -> &'static hs_landscape::hs_portscan::ScanReport {
    study().scan.as_ref().expect("scan stage completed")
}

fn crawl() -> &'static hs_landscape::hs_content::CrawlReport {
    study().crawl.as_ref().expect("crawl stage completed")
}

fn certs() -> &'static hs_landscape::hs_content::CertSurvey {
    study().certs.as_ref().expect("certs stage completed")
}

fn resolution() -> &'static hs_landscape::hs_popularity::ResolutionReport {
    study()
        .resolution
        .as_ref()
        .expect("popularity stage completed")
}

fn ranking() -> &'static hs_landscape::hs_popularity::Ranking {
    study()
        .ranking
        .as_ref()
        .expect("popularity stage completed")
}

fn run_study() -> StudyReport {
    let cfg = StudyConfig {
        scale: 0.03,
        relays: 200,
        harvest: hs_landscape::hs_harvest::HarvestConfig {
            fleet: hs_landscape::hs_harvest::FleetConfig {
                ips: 10,
                relays_per_ip: 10,
                bandwidth: 300,
            },
            warmup_hours: 26,
            rotation_hours: 2,
        },
        scan_days: 4,
        traffic_clients: 120,
        run_tracking: false,
        ..StudyConfig::default()
    };
    Study::new(cfg).run()
}

/// E1/Fig. 1 — Skynet's port dominates; HTTP next; SSH third among
/// single services.
#[test]
fn e1_fig1_port_ranking() {
    let rows = scan().fig1_rows(5);
    assert_eq!(rows[0].0, "55080-Skynet", "{rows:?}");
    let count = |label: &str| {
        rows.iter()
            .find(|(l, _)| l == label)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    let skynet = count("55080-Skynet");
    let http = count("80-http");
    let https = count("443-https");
    let ssh = count("22-ssh");
    assert!(skynet > 2 * http, "skynet {skynet} vs http {http}");
    assert!(http > https, "http {http} vs https {https}");
    assert!(http > ssh, "http {http} vs ssh {ssh}");
    // Paper factor: 55080 ≈ 3.4 × port 80.
    let factor = f64::from(skynet) / f64::from(http.max(1));
    assert!((2.0..6.0).contains(&factor), "factor {factor}");
}

/// E2 — scan coverage lands near the paper's 87 %.
#[test]
fn e2_scan_coverage() {
    let cov = scan().coverage();
    assert!((0.75..0.97).contains(&cov), "coverage {cov}");
}

/// E3 — certificate survey: TorHost CN dominates the self-signed
/// mismatches; a handful of deanonymising clearnet CNs exist.
#[test]
fn e3_cert_survey() {
    let certs = certs();
    assert!(certs.https_destinations > 0);
    assert!(certs.torhost_cn * 10 > certs.self_signed_mismatch * 9);
    assert!(certs.clearnet_dns >= 1);
    assert!(certs.clearnet_dns < certs.https_destinations / 5);
}

/// E4/Table I — port 80 carries most connected destinations; 443 and
/// 22 follow.
#[test]
fn e4_table1_shape() {
    let rows = crawl().table1_rows();
    let get = |p: &str| rows.iter().find(|(l, _)| l == p).unwrap().1;
    assert!(get("80") > get("443"));
    assert!(get("80") > get("22"));
    assert!(get("443") >= get("8080"));
}

/// E5 — the exclusion funnel: roughly half of connected destinations
/// fall out; SSH banners are the majority of the short pages when SSH
/// services survive the crawl.
#[test]
fn e5_funnel_shape() {
    let crawl = crawl();
    let kept = crawl.classified.len() as f64 / crawl.connected.max(1) as f64;
    assert!((0.30..0.65).contains(&kept), "kept {kept}");
    assert!(crawl.ssh_banners > 0);
    assert!(crawl.excluded_mirrors > 0);
}

/// E6 — English ≈ 84 % of classified pages; more than 5 languages
/// appear.
#[test]
fn e6_language_distribution() {
    let crawl = crawl();
    let english = crawl.english_count() as f64 / crawl.classified.len().max(1) as f64;
    assert!((0.75..0.93).contains(&english), "english {english}");
    assert!(crawl.language_histogram().len() >= 5);
    assert_eq!(crawl.language_histogram()[0].0, Language::English);
}

/// E7/Fig. 2 — Adult and Drugs lead; the four "illegal" categories
/// together sit near the paper's 44 %.
#[test]
fn e7_fig2_topics() {
    let rows = crawl().fig2_rows();
    let pct = |t: Topic| rows.iter().find(|(x, _, _)| *x == t).unwrap().2;
    let illegal =
        pct(Topic::Adult) + pct(Topic::Drugs) + pct(Topic::Counterfeit) + pct(Topic::Weapons);
    assert!((30.0..58.0).contains(&illegal), "illegal {illegal}%");
    assert!(pct(Topic::Adult) >= pct(Topic::Games));
    assert!(pct(Topic::Drugs) >= pct(Topic::Science));
}

/// E8 — phantom requests dominate (paper: 80 %); only a small share of
/// published services is ever requested (paper: ~10 %).
#[test]
fn e8_sec5_stats() {
    let resolution = resolution();
    let phantom = resolution.phantom_share();
    assert!((0.60..0.92).contains(&phantom), "phantom {phantom}");
    let share = study().requested_published_share.unwrap();
    assert!((0.05..0.25).contains(&share), "requested share {share}");
    // Roughly two descriptor IDs (replicas) per resolved onion.
    let ids_per_onion =
        resolution.resolved_desc_ids as f64 / resolution.resolved_onions.max(1) as f64;
    assert!(
        (1.2..4.1).contains(&ids_per_onion),
        "ids/onion {ids_per_onion}"
    );
}

/// E9/Table II — Goldnet tops the ranking; Skynet cluster in the upper
/// ranks; Silk Road well above DuckDuckGo.
#[test]
fn e9_table2_shape() {
    let ranking = ranking();
    let top5 = ranking.top(5);
    let goldnet_in_top5 = top5.iter().filter(|row| row.label == "Goldnet").count();
    assert!(goldnet_in_top5 >= 3, "goldnet rows in top5: {top5:?}");

    let silkroad = ranking.rank_of_label("SilkRoad").expect("silkroad ranked");
    // At small scales DuckDuckGo's Poisson rate (55 × scale per 2 h) can
    // round to zero observed requests; when present it must rank far
    // below Silk Road, as in the paper (#157 vs #18).
    if let Some(ddg) = ranking.rank_of_label("DuckDuckGo") {
        assert!(silkroad < ddg, "silkroad {silkroad} vs ddg {ddg}");
    }
    assert!(silkroad <= 40, "silkroad rank {silkroad}");

    // Skynet C&C nodes rank high (paper: between 10 and 28).
    let skynet = ranking.rank_of_label("Skynet").expect("skynet ranked");
    assert!(skynet <= 35, "skynet rank {skynet}");

    // The Goldnet forensics identify two physical servers.
    let forensics = study()
        .forensics
        .as_ref()
        .expect("popularity stage completed");
    assert_eq!(forensics.physical_servers(), 2);
}

/// E10/Fig. 3 — deanonymised clients span many countries with the
/// heavyweights on top.
#[test]
fn e10_fig3_geomap() {
    let deanon = study().deanon.as_ref().expect("geomap stage completed");
    if deanon.unique_clients >= 20 {
        assert!(deanon.geomap.country_count() >= 4);
        let top = deanon.geomap.rows()[0];
        assert!(
            ["US", "DE", "RU", "FR", "IT", "GB"].contains(&top.0),
            "top country {top:?}"
        );
    }
}

/// E12/Sec. VII — the detector finds all three campaigns in the right
/// years and stays quiet on the clean year-1 background.
#[test]
fn e12_tracking_three_campaigns() {
    let mut archive = ConsensusArchive::generate(&HistoryConfig {
        hsdirs_at_start: 200,
        hsdirs_at_end: 400,
        seed: 0xe12,
        ..HistoryConfig::default()
    });
    scenario::inject_all(&mut archive, scenario::silkroad());
    let det = TrackingDetector::new(DetectorConfig::default());

    let y1 = det.analyse(
        &archive,
        scenario::silkroad(),
        SimTime::from_ymd(2011, 2, 1),
        SimTime::from_ymd(2011, 12, 31),
    );
    // Year 1: no tracker meeting the combined criterion (the oddity is
    // at ratio ~2, below deliberate-placement threshold).
    assert!(
        y1.trackers().is_empty(),
        "year-1 trackers: {:?}",
        y1.trackers()
            .iter()
            .map(|t| &t.nicknames)
            .collect::<Vec<_>>()
    );

    let y2 = det.analyse(
        &archive,
        scenario::silkroad(),
        SimTime::from_ymd(2012, 1, 1),
        SimTime::from_ymd(2012, 12, 31),
    );
    assert!(
        y2.suspicious()
            .iter()
            .any(|s| s.nicknames.iter().any(|n| n.starts_with("unnamed"))),
        "year 2 finds our own harvest relays"
    );

    let y3 = det.analyse(
        &archive,
        scenario::silkroad(),
        SimTime::from_ymd(2013, 1, 1),
        SimTime::from_ymd(2013, 10, 31),
    );
    let names: Vec<String> = y3
        .trackers()
        .iter()
        .flat_map(|t| t.nicknames.clone())
        .collect();
    assert!(
        names.iter().any(|n| n == "PrivacyRelayX"),
        "May campaign found: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("GlobalObserver")),
        "August takeover found: {names:?}"
    );
}

/// E13/Sec. II — the cost arithmetic: > 300 IPs naïvely, ≤ 58 with
/// shadowing at 24 relays per IP.
#[test]
fn e13_harvest_cost() {
    use hs_landscape::hs_harvest::coverage;
    assert!(coverage::naive_ips_needed(calib::HSDIR_COUNT_2013) > 300);
    assert!(coverage::shadowing_ips_needed(calib::HSDIR_COUNT_2013, 24) <= calib::HARVEST_IPS);
    assert_eq!(coverage::attack_hours(24, 2), 49);
}

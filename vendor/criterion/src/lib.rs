//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of the criterion API the workspace's benches
//! use (`Criterion`, groups, `Bencher::iter*`, the two macros) as a
//! plain wall-clock harness: each benchmark is timed over a fixed
//! number of batches and the per-iteration mean and best batch are
//! printed. No statistics, plots, or baselines — just numbers stable
//! enough to spot order-of-magnitude regressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation (printed alongside the timing).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Benchmark identifier within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id naming only the parameter (`group/param`).
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{param}", function.into()),
        }
    }
}

/// Times closures handed to it by a benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, called repeatedly.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up and calibration: target ~20ms per sample batch.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let per_batch =
            (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        self.iters_per_sample = per_batch;
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }

    /// Times `routine`, rebuilding its input with `setup` outside the
    /// timed section.
    pub fn iter_with_setup<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
    ) {
        self.iters_per_sample = 1;
        for _ in 0..SAMPLES {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let iters = self.iters_per_sample.max(1);
        let per_iter = |d: &Duration| d.as_nanos() as f64 / iters as f64;
        let best = self
            .samples
            .iter()
            .map(per_iter)
            .fold(f64::INFINITY, f64::min);
        let mean = self.samples.iter().map(per_iter).sum::<f64>() / self.samples.len() as f64;
        let thr = match throughput {
            Some(Throughput::Bytes(b)) => {
                format!(
                    "  {:>8.1} MiB/s",
                    b as f64 / (best * 1e-9) / (1024.0 * 1024.0)
                )
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>8.1} Melem/s", n as f64 / (best * 1e-9) / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{name:<40} mean {:>12}  best {:>12}{thr}",
            fmt_ns(mean),
            fmt_ns(best)
        );
    }
}

const SAMPLES: usize = 10;

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; this
    /// harness always runs a fixed number of batches).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{id}", self.name), self.throughput);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id), self.throughput);
        self
    }

    /// Ends the group (no-op; printing is immediate).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

/// Prevents the optimiser from deleting a value (re-exported for
/// criterion API compatibility).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_addition(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3)));
    }

    #[test]
    fn harness_runs_a_bench() {
        let mut c = Criterion::default();
        bench_addition(&mut c);
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Bytes(64));
        group.bench_with_input(BenchmarkId::from_parameter(64), &64u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.bench_function("setup", |b| {
            b.iter_with_setup(|| vec![1u8; 16], |v| v.len())
        });
        group.finish();
    }
}

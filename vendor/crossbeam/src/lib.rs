//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the one API the workspace uses — `crossbeam::thread::scope`
//! with `Scope::spawn` — implemented on top of `std::thread::scope`
//! (stable since Rust 1.63, which made the crossbeam original largely
//! redundant).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::thread as stdthread;

    /// A scope for spawning borrowing threads; mirrors
    /// `crossbeam::thread::Scope`.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; mirrors
    /// `crossbeam::thread::ScopedJoinHandle`.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope again (crossbeam's signature) so it can spawn nested
        /// work.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope; all threads spawned in it are joined before it
    /// returns. Always `Ok` unless a spawned-and-unjoined thread
    /// panicked (in which case `std::thread::scope` propagates the
    /// panic, which crossbeam reported as `Err` instead — every caller
    /// in this workspace joins its handles, so the difference is moot).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1u64, 2, 3, 4];
        let total = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_compiles_and_runs() {
        let out = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7u32).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 7);
    }
}

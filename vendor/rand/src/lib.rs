//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the subset of the `rand` API the workspace
//! uses: [`Rng`]/[`RngExt`], [`SeedableRng`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`]. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic, portable, and statistically strong
//! enough for every calibration band in the test suite.
//!
//! It is *not* a cryptographic RNG and must never be used as one; the
//! simulation only needs reproducible pseudo-randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Bound, RangeBounds};

/// A source of random 64-bit words.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly at random from an RNG.
pub trait Random: Sized {
    /// Samples one uniformly distributed value.
    fn random_from(rng: &mut dyn FnMut() -> u64) -> Self;
}

impl Random for f64 {
    fn random_from(rng: &mut dyn FnMut() -> u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from(rng: &mut dyn FnMut() -> u64) -> Self {
        (rng() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    fn random_from(rng: &mut dyn FnMut() -> u64) -> Self {
        rng() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from(rng: &mut dyn FnMut() -> u64) -> Self {
                rng() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types samplable uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi]` (both inclusive).
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn FnMut() -> u64) -> Self;
    /// The value immediately below `hi`, for converting exclusive
    /// upper bounds; panics on an empty range.
    fn down_one(hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn FnMut() -> u64) -> Self {
                debug_assert!(lo <= hi, "empty sample range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit (or wider) span: every word is valid.
                    return rng() as $t;
                }
                // Widening multiply maps the 64-bit word onto the span
                // without the low-bit bias of a bare modulo.
                let hi64 = ((rng() as u128 * span) >> 64) as u64;
                lo.wrapping_add(hi64 as $t)
            }
            fn down_one(hi: Self) -> Self {
                hi.checked_sub(1).expect("empty sample range")
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every
/// [`Rng`]. Kept separate from the core trait so call sites can import
/// either name (mirroring the upstream `Rng`/`RngExt` split).
pub trait RngExt: Rng {
    /// Samples a uniformly distributed value of `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        let mut f = || self.next_u64();
        T::random_from(&mut f)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn random_range<T: SampleUniform, R: RangeBounds<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(_) | Bound::Unbounded => {
                panic!("random_range requires an included lower bound")
            }
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => T::down_one(v),
            Bound::Unbounded => panic!("random_range requires a bounded range"),
        };
        assert!(lo <= hi, "random_range called with an empty range");
        let mut f = || self.next_u64();
        T::sample_inclusive(lo, hi, &mut f)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with a
    /// SplitMix64-expanded seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngExt};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>().to_bits(), b.random::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range_and_centered() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
        for _ in 0..100 {
            let v = rng.random_range(3..=5u8);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}

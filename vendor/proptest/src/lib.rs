//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of proptest the workspace's property tests
//! use: the [`proptest!`] macro, [`prelude::any`], integer-range and
//! tuple strategies, [`collection::vec`] / [`collection::hash_set`], and the
//! `prop_assert*` macros. Each test runs a fixed number of
//! deterministically seeded cases (no shrinking — a failing case
//! prints its index and seed so it can be replayed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Cases run per property.
pub const CASES: u32 = 64;

/// A generator of random values for one test case.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Uniform strategy over a half-open integer range (`0u64..1000`).
impl<T: rand::SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.start..self.end)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Samples one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random::<$t>()
            }
        }
    )*};
}
impl_arbitrary_prim!(u8, u16, u32, u64, usize, bool);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mut out = [0u8; N];
        rng.fill(&mut out);
        out
    }
}

macro_rules! impl_strategy_tuple {
    ($($s:ident / $idx:tt),*) => {
        impl<$($s: Strategy),*> Strategy for ($($s,)*) {
            type Value = ($($s::Value,)*);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)*)
            }
        }
    };
}
impl_strategy_tuple!(A / 0, B / 1);
impl_strategy_tuple!(A / 0, B / 1, C / 2);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3);

/// Strategy produced by [`prelude::any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec<T>` of `size`-many elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.random_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>` with a cardinality drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `HashSet<T>` of `size`-many distinct elements from `element`.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let want = rng.random_range(self.size.start..self.size.end);
            let mut out = HashSet::with_capacity(want);
            // Bounded retry loop: for the sparse domains used in the
            // tests (byte arrays, wide integers) collisions are rare.
            let mut attempts = 0;
            while out.len() < want && attempts < want * 100 + 100 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod test_runner {
    use super::*;

    /// Deterministic per-test RNG: seeded from the test's name so every
    /// run (and every machine) exercises the same cases.
    pub fn rng_for(test_name: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ (u64::from(case) << 32))
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Any, Arbitrary, Strategy};

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body
/// runs [`CASES`] times over deterministically seeded inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::CASES {
                    let mut proptest_rng =
                        $crate::test_runner::rng_for(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);
                    )*
                    // Inputs are printed only on panic, via the case id.
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest {}: failing case {case} (deterministic; rerun reproduces it)",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn vec_lengths_respect_bounds(data in collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&data.len()));
        }

        #[test]
        fn hash_sets_reach_requested_cardinality(
            s in collection::hash_set(any::<[u8; 20]>(), 3..10),
        ) {
            prop_assert!((3..10).contains(&s.len()));
        }

        #[test]
        fn ranges_sample_in_bounds(n in 5usize..50, w in 0u64..1000) {
            prop_assert!((5..50).contains(&n));
            prop_assert!(w < 1000);
        }

        #[test]
        fn tuple_strategies_compose_with_collections(
            rows in collection::vec((any::<u8>(), 1u64..5), 1..8),
        ) {
            prop_assert!((1..8).contains(&rows.len()));
            prop_assert!(rows.iter().all(|&(_, w)| (1..5).contains(&w)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| {
                let mut rng = crate::test_runner::rng_for("x", c);
                crate::Strategy::sample(&(0u64..1_000_000), &mut rng)
            })
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| {
                let mut rng = crate::test_runner::rng_for("x", c);
                crate::Strategy::sample(&(0u64..1_000_000), &mut rng)
            })
            .collect();
        assert_eq!(a, b);
    }
}
